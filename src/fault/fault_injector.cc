#include "src/fault/fault_injector.h"

#include <string>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace tierscape {
namespace {

// Top 53 bits of a SplitMix64 output, mapped to [0, 1). Each site draws from
// its own SplitSeed-derived child stream (src/common/rng.h), so two sites
// with equal draw indices never share a Bernoulli sequence.
double UnitDraw(std::uint64_t seed, FaultSite site, std::uint64_t index) {
  const std::uint64_t site_seed = SplitSeed(seed, static_cast<std::uint64_t>(site));
  const std::uint64_t x = SplitMix64(site_seed ^ SplitMix64(index));
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

Status RateInRange(double rate, std::string_view knob) {
  if (rate < 0.0 || rate > 1.0) {
    return InvalidArgument(std::string(knob) + " must be in [0, 1], got " + std::to_string(rate));
  }
  return OkStatus();
}

}  // namespace

std::string_view FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kStoreReject:
      return "store_reject";
    case FaultSite::kStoreTransient:
      return "store_transient";
    case FaultSite::kMediumExhausted:
      return "medium_exhausted";
    case FaultSite::kSolverTimeout:
      return "solver_timeout";
    case FaultSite::kSolverInfeasible:
      return "solver_infeasible";
    case FaultSite::kSamplerDrop:
      return "sampler_drop";
  }
  return "unknown";
}

double FaultConfig::RateFor(FaultSite site) const {
  switch (site) {
    case FaultSite::kStoreReject:
      return store_reject_rate;
    case FaultSite::kStoreTransient:
      return store_transient_rate;
    case FaultSite::kMediumExhausted:
      return medium_exhausted_rate;
    case FaultSite::kSolverTimeout:
      return solver_timeout_rate;
    case FaultSite::kSolverInfeasible:
      return solver_infeasible_rate;
    case FaultSite::kSamplerDrop:
      return sampler_drop_rate;
  }
  return 0.0;
}

Status FaultConfig::Validate() const {
  TS_RETURN_IF_ERROR(RateInRange(store_reject_rate, "store_reject_rate"));
  TS_RETURN_IF_ERROR(RateInRange(store_transient_rate, "store_transient_rate"));
  TS_RETURN_IF_ERROR(RateInRange(medium_exhausted_rate, "medium_exhausted_rate"));
  TS_RETURN_IF_ERROR(RateInRange(solver_timeout_rate, "solver_timeout_rate"));
  TS_RETURN_IF_ERROR(RateInRange(solver_infeasible_rate, "solver_infeasible_rate"));
  TS_RETURN_IF_ERROR(RateInRange(sampler_drop_rate, "sampler_drop_rate"));
  if (sampler_drop_rate > 0.0 && sampler_drop_burst == 0) {
    return InvalidArgument(
        "sampler_drop_burst must be >= 1 when sampler_drop_rate > 0 (a burst of zero samples "
        "injects nothing)");
  }
  return OkStatus();
}

FaultConfig FaultConfig::Uniform(std::uint64_t seed, double rate) {
  FaultConfig config;
  config.seed = seed;
  config.store_reject_rate = rate;
  config.store_transient_rate = rate;
  config.medium_exhausted_rate = rate;
  config.solver_timeout_rate = rate;
  config.solver_infeasible_rate = rate;
  config.sampler_drop_rate = rate;
  return config;
}

FaultInjector::FaultInjector(const FaultConfig& config, Observability* obs) : config_(config) {
  const Status valid = config_.Validate();
  TS_CHECK(valid.ok()) << "FaultConfig: " << valid.ToString();
  MetricsRegistry& metrics = ResolveObs(obs).metrics;
  for (int i = 0; i < kFaultSiteCount; ++i) {
    injected_counters_[i] = &metrics.GetCounter(
        std::string("fault/injected/") + std::string(FaultSiteName(static_cast<FaultSite>(i))));
  }
  dropped_samples_ = &metrics.GetCounter("fault/sampler/dropped_samples");
}

bool FaultInjector::ShouldFail(FaultSite site) {
  if (!armed_ || !config_.enabled()) {
    return false;
  }
  const double rate = config_.RateFor(site);
  if (rate <= 0.0) {
    return false;
  }
  const int i = static_cast<int>(site);
  const std::uint64_t index = ++draws_[i];
  if (UnitDraw(config_.seed, site, index) >= rate) {
    return false;
  }
  ++injected_[i];
  injected_counters_[i]->Add();
  return true;
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : injected_) {
    total += n;
  }
  return total;
}

void FaultInjector::CountDroppedSamples(std::uint64_t n) { dropped_samples_->Add(n); }

}  // namespace tierscape
