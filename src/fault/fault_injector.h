// Seeded, virtual-time-deterministic fault injection (DESIGN.md §4d).
//
// The injector answers one question — "does this operation fail now?" — at a
// fixed set of sites (store rejection, transient store failure, medium
// exhaustion, solver timeout/infeasibility, sampler drop bursts). Every
// answer is a pure function of (seed, site, per-site draw index), so a given
// experiment sees the exact same fault sequence on every run, at every thread
// count, with or without the compression cache. Wall clocks are banned here
// outright: tslint's fault-hook-purity rule (DESIGN.md §4c) refuses wall-time
// identifiers in this directory and in any file that includes this header.
//
// Threading contract: ShouldFail() mutates per-site draw counters and
// fault/ metrics, so it follows the thread-pool invariant
// (src/common/thread_pool.h) — call it only from the submitting/sequential
// path, never from ThreadPool workers. All current hooks sit on sequential
// paths (zswap StoreCompressed, Medium alloc, solver entry, sampler drain).
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <string_view>

#include "src/common/status.h"
#include "src/obs/observability.h"

namespace tierscape {

// Natural failure points the paper's substrate exposes (§7.1 pool store
// rejection, §8.4 solver budget overrun) plus the capacity/telemetry faults
// any production tiering daemon must survive.
enum class FaultSite : int {
  kStoreReject = 0,    // compressed tier refuses the page (incompressible)
  kStoreTransient,     // pool store fails transiently; retry may succeed
  kMediumExhausted,    // frame/run allocation spuriously denied
  kSolverTimeout,      // MCKP solve blows its window budget
  kSolverInfeasible,   // MCKP solve reports no feasible placement
  kSamplerDrop,        // PEBS buffer overflow drops a burst of samples
};
inline constexpr int kFaultSiteCount = 6;

std::string_view FaultSiteName(FaultSite site);

// Per-site Bernoulli rates. seed == 0 disables injection entirely (the
// default: production assemblies pay one branch per hook).
struct FaultConfig {
  std::uint64_t seed = 0;
  double store_reject_rate = 0.0;
  double store_transient_rate = 0.0;
  double medium_exhausted_rate = 0.0;
  double solver_timeout_rate = 0.0;
  double solver_infeasible_rate = 0.0;
  double sampler_drop_rate = 0.0;
  // Consecutive samples discarded when a kSamplerDrop fault fires.
  std::uint32_t sampler_drop_burst = 64;

  bool enabled() const { return seed != 0; }
  double RateFor(FaultSite site) const;
  Status Validate() const;

  // Convenience: every site at the same rate (fig15 sweeps this scale).
  static FaultConfig Uniform(std::uint64_t seed, double rate);
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config, Observability* obs = nullptr);

  // True iff a fault fires at this site for this draw. Deterministic: the
  // n-th armed query at a site always returns the same answer for a given
  // seed. Disarmed (or disabled, or zero-rate) queries consume no draw, so
  // setup phases do not shift the measured-phase fault sequence.
  bool ShouldFail(FaultSite site);

  // Arming gate: experiment drivers disarm the injector while building the
  // initial placement and arm it for the measured phase, so faults only
  // perturb the steady state the figures measure.
  void set_armed(bool armed) { armed_ = armed; }
  bool armed() const { return armed_; }
  bool enabled() const { return config_.enabled(); }
  const FaultConfig& config() const { return config_; }

  std::uint64_t draws(FaultSite site) const { return draws_[static_cast<int>(site)]; }
  std::uint64_t injected(FaultSite site) const { return injected_[static_cast<int>(site)]; }
  std::uint64_t injected_total() const;

  // Bookkeeping for the sampler hook: number of individual samples discarded
  // across all drop bursts (fault/sampler/dropped_samples).
  void CountDroppedSamples(std::uint64_t n);

 private:
  FaultConfig config_;
  bool armed_ = true;
  std::array<std::uint64_t, kFaultSiteCount> draws_{};
  std::array<std::uint64_t, kFaultSiteCount> injected_{};
  std::array<Counter*, kFaultSiteCount> injected_counters_{};
  Counter* dropped_samples_;
};

// Null-object helper mirroring ResolveObs: hooks hold a FaultInjector* that
// may be null (no injection configured); this keeps call sites one-liner.
inline bool ShouldInjectFault(FaultInjector* fault, FaultSite site) {
  return fault != nullptr && fault->ShouldFail(site);
}

}  // namespace tierscape

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
