#include "src/zswap/compressed_tier.h"

#include <vector>

#include "src/common/logging.h"
#include "src/fault/fault_injector.h"

namespace tierscape {
namespace {

constexpr std::size_t kCachelineSize = 64;

}  // namespace

Status CompressedTierConfig::Validate() const {
  if (label.empty()) {
    return InvalidArgument("CompressedTierConfig: label must be non-empty");
  }
  if (max_store_ratio <= 0.0 || max_store_ratio > 1.0) {
    return InvalidArgument("CompressedTierConfig \"" + label +
                           "\": max_store_ratio must be in (0, 1], got " +
                           std::to_string(max_store_ratio));
  }
  return OkStatus();
}

CompressedTier::CompressedTier(int tier_id, CompressedTierConfig config, Medium& medium,
                               Observability& obs, FaultInjector* fault)
    : tier_id_(tier_id),
      config_(std::move(config)),
      medium_(medium),
      fault_(fault),
      compressor_(&GetCompressor(config_.algorithm)) {
  const Status valid = config_.Validate();
  TS_CHECK(valid.ok()) << valid.ToString();
  MetricsRegistry& metrics = obs.metrics;
  pool_ = CreateZPool(config_.pool_manager, medium, metrics, config_.label);
  const std::string prefix = "zswap/" + config_.label + "/";
  m_stores_ = &metrics.GetCounter(prefix + "stores");
  m_rejects_ = &metrics.GetCounter(prefix + "rejects");
  m_loads_ = &metrics.GetCounter(prefix + "loads");
  m_faults_ = &metrics.GetCounter(prefix + "faults");
  m_invalidates_ = &metrics.GetCounter(prefix + "invalidates");
  m_compressed_bytes_ = &metrics.GetCounter(prefix + "compressed_bytes");
  m_pool_bytes_ = &metrics.GetGauge(prefix + "pool_bytes");
  m_stored_pages_ = &metrics.GetGauge(prefix + "stored_pages");
}

void CompressedTier::UpdateOccupancyGauges() {
  pool_->RefreshMetrics();
  m_pool_bytes_->Set(static_cast<double>(pool_bytes()));
  m_stored_pages_->Set(static_cast<double>(stored_pages()));
}

StatusOr<CompressedTier::StoreResult> CompressedTier::Store(std::span<const std::byte> page) {
  TS_CHECK_EQ(page.size(), kPageSize);
  // Compress unclamped so the output is a pure function of (contents,
  // algorithm) — the property the compression cache memoizes — and apply the
  // zswap rejection threshold to the true size in StoreCompressed.
  std::byte scratch[2 * kPageSize];
  auto compressed = compressor_->Compress(page, scratch);
  if (!compressed.ok()) {
    ++stats_.rejects;
    m_rejects_->Add();
    return Rejected(config_.label + ": page not compressible enough");
  }
  return StoreCompressed(std::span<const std::byte>(scratch, *compressed));
}

StatusOr<CompressedTier::StoreResult> CompressedTier::StoreCompressed(
    std::span<const std::byte> compressed) {
  // Injected faults (DESIGN.md §4d): a transient pool failure surfaces as
  // kUnavailable (the migration pipeline retries it); an injected rejection is
  // indistinguishable from a genuinely incompressible page.
  if (ShouldInjectFault(fault_, FaultSite::kStoreTransient)) {
    return Unavailable(config_.label + ": transient pool store failure (injected)");
  }
  if (ShouldInjectFault(fault_, FaultSite::kStoreReject)) {
    ++stats_.rejects;
    m_rejects_->Add();
    return Rejected(config_.label + ": page not compressible enough (injected)");
  }
  if (!WithinStoreRatio(compressed.size())) {
    ++stats_.rejects;
    m_rejects_->Add();
    return Rejected(config_.label + ": page not compressible enough");
  }
  auto handle = PlaceUnaccounted(compressed);
  if (!handle.ok()) {
    return handle.status();
  }
  ++stats_.stores;
  m_stores_->Add();
  m_compressed_bytes_->Add(compressed.size());
  total_compressed_bytes_ += compressed.size();
  ++total_stored_;
  UpdateOccupancyGauges();
  StoreResult result;
  result.handle = *handle;
  result.compressed_size = static_cast<std::uint32_t>(compressed.size());
  result.latency = StoreCost(compressed.size());
  return result;
}

StatusOr<ZPoolHandle> CompressedTier::PlaceUnaccounted(std::span<const std::byte> compressed) {
  // Multi-tenant grant partition (DESIGN.md §4f): a pool already at its
  // grant behaves exactly like a full backing medium.
  if (pool_bytes() >= grant_bytes_ || grant_bytes_ - pool_bytes() < compressed.size()) {
    return OutOfMemory(config_.label + ": grant exhausted");
  }
  auto handle = pool_->Alloc(compressed.size());
  if (!handle.ok()) {
    return handle.status();
  }
  auto dst = pool_->Map(*handle);
  TS_CHECK(dst.ok());
  std::copy(compressed.begin(), compressed.end(), dst->data());
  return handle;
}

void CompressedTier::CommitAccessDelta(const AccessDelta& delta) {
  if (delta.Empty()) {
    return;
  }
  stats_.stores += delta.stores;
  stats_.rejects += delta.rejects;
  stats_.loads += delta.loads;
  stats_.invalidates += delta.invalidates;
  m_stores_->Add(delta.stores);
  m_rejects_->Add(delta.rejects);
  m_loads_->Add(delta.loads);
  m_invalidates_->Add(delta.invalidates);
  m_compressed_bytes_->Add(delta.compressed_bytes);
  total_compressed_bytes_ += delta.compressed_bytes;
  total_stored_ += delta.stores;
  UpdateOccupancyGauges();
}

Status CompressedTier::Load(ZPoolHandle handle, std::span<std::byte> out) {
  TS_CHECK_EQ(out.size(), kPageSize);
  auto src = pool_->Map(handle);
  if (!src.ok()) {
    return src.status();
  }
  auto size = compressor_->Decompress(*src, out);
  if (!size.ok()) {
    return size.status();
  }
  ++stats_.loads;
  m_loads_->Add();
  return OkStatus();
}

Status CompressedTier::Invalidate(ZPoolHandle handle) {
  ++stats_.invalidates;
  m_invalidates_->Add();
  const Status freed = pool_->Free(handle);
  UpdateOccupancyGauges();
  return freed;
}

Nanos CompressedTier::LoadCost(std::size_t compressed_size) const {
  // Pool lookup + per-cacheline read of the compressed bytes from the backing
  // medium + decompression. Compressibility of the data thus directly lowers
  // the access latency, as the paper notes in §3.3.
  const std::size_t lines = (compressed_size + kCachelineSize - 1) / kCachelineSize;
  return pool_->map_overhead_ns() + lines * medium_.load_latency_ns() +
         compressor_->decompress_page_ns();
}

Nanos CompressedTier::NominalLoadCost() const {
  // Until data is observed, assume half-page compressed size.
  const std::size_t typical =
      total_stored_ > 0 ? total_compressed_bytes_ / total_stored_ : kPageSize / 2;
  return LoadCost(typical);
}

Nanos CompressedTier::StoreCost(std::size_t compressed_size) const {
  const std::size_t lines = (compressed_size + kCachelineSize - 1) / kCachelineSize;
  return pool_->map_overhead_ns() + lines * medium_.load_latency_ns() +
         compressor_->compress_page_ns();
}

double CompressedTier::EffectiveRatio() const {
  const std::size_t stored = stored_pages() * kPageSize;
  if (stored == 0) {
    return 1.0;
  }
  return static_cast<double>(pool_bytes()) / static_cast<double>(stored);
}

}  // namespace tierscape
