#include "src/zswap/access_path.h"

#include <algorithm>
#include <utility>

namespace tierscape {
namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

int Log2(std::size_t pow2) {
  int log = 0;
  while ((std::size_t{1} << log) < pow2) {
    ++log;
  }
  return log;
}

}  // namespace

Status AccessPathConfig::Validate() const {
  if (shards_per_tier == 0 || shards_per_tier > (std::size_t{1} << 20)) {
    return InvalidArgument("AccessPathConfig: shards_per_tier must be in [1, 2^20], got " +
                           std::to_string(shards_per_tier));
  }
  return OkStatus();
}

ZswapAccessPath::ZswapAccessPath(ZswapBackend& backend, AccessPathConfig config)
    : backend_(&backend), config_(config) {
  const Status valid = config_.Validate();
  TS_CHECK(valid.ok()) << valid.ToString();
  config_.shards_per_tier = RoundUpPow2(config_.shards_per_tier);
  shard_shift_ = 64 - Log2(config_.shards_per_tier);

  // Resolve one allocation lock per distinct backing Medium, at construction
  // (§4b spirit): tiers sharing a Medium must serialize their pool mutations
  // against each other, not only against themselves.
  std::vector<Medium*> media;
  tiers_.resize(static_cast<std::size_t>(backend.tier_count()));
  for (int id = 0; id < backend.tier_count(); ++id) {
    TierState& state = tiers_[static_cast<std::size_t>(id)];
    state.tier = &backend.tier(id);
    Medium* medium = &state.tier->medium();
    auto it = std::find(media.begin(), media.end(), medium);
    if (it == media.end()) {
      media.push_back(medium);
      medium_locks_.push_back(std::make_unique<std::mutex>());
      it = media.end() - 1;
    }
    state.medium_mu = medium_locks_[static_cast<std::size_t>(it - media.begin())].get();
    state.shards.reserve(config_.shards_per_tier);
    for (std::size_t s = 0; s < config_.shards_per_tier; ++s) {
      state.shards.push_back(std::make_unique<Shard>());
    }
  }
}

StatusOr<ZswapAccessPath::StoreResult> ZswapAccessPath::Store(int tier_id, AccessKey key,
                                                              std::span<const std::byte> page) {
  TS_CHECK_EQ(page.size(), kPageSize);
  TierState& state = StateFor(tier_id);
  CompressedTier& tier = *state.tier;
  Shard& shard = ShardFor(state, key);

  // Compress outside every lock — the dominant cost, and a pure function of
  // (contents, algorithm), so the reject decision below is deterministic.
  std::byte scratch[2 * kPageSize];
  auto compressed = tier.compressor().Compress(page, scratch);
  if (!compressed.ok() || !tier.WithinStoreRatio(*compressed)) {
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.delta.rejects;
    return Rejected(tier.label() + ": page not compressible enough");
  }
  const std::span<const std::byte> bytes(scratch, *compressed);

  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.entries.count(key) != 0) {
    return FailedPrecondition(tier.label() + ": access key already stored");
  }
  ZPoolHandle handle = 0;
  {
    // Lock order is always shard → medium; the placement itself is a tiny
    // alloc + copy, so striped stores still scale on the compression work.
    std::lock_guard<std::mutex> medium_lock(*state.medium_mu);
    auto placed = tier.PlaceUnaccounted(bytes);
    if (!placed.ok()) {
      return placed.status();  // kOutOfMemory (grant/medium) or pool status
    }
    handle = *placed;
  }
  Entry entry;
  entry.handle = handle;
  entry.compressed_size = static_cast<std::uint32_t>(bytes.size());
  shard.entries.emplace(key, entry);
  ++shard.delta.stores;
  shard.delta.compressed_bytes += bytes.size();

  StoreResult result;
  result.compressed_size = entry.compressed_size;
  result.latency = tier.StoreCost(bytes.size());
  return result;
}

StatusOr<ZswapAccessPath::LoadResult> ZswapAccessPath::Load(int tier_id, AccessKey key,
                                                            std::span<std::byte> out) {
  TS_CHECK_EQ(out.size(), kPageSize);
  TierState& state = StateFor(tier_id);
  CompressedTier& tier = *state.tier;
  Shard& shard = ShardFor(state, key);

  // Pin: the entry (and therefore its pool bytes) cannot be freed until the
  // matching unpin, so the decompression below runs lock-free.
  ZPoolHandle handle = 0;
  std::uint32_t size = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end() || it->second.tombstone) {
      return NotFound(tier.label() + ": access key not stored");
    }
    ++it->second.refs;
    handle = it->second.handle;
    size = it->second.compressed_size;
  }

  // Resolve the span under the medium lock (pool index structures are
  // mutated by concurrent placements/frees); the bytes it points at stay
  // valid without the lock because the entry is pinned.
  std::span<const std::byte> bytes;
  {
    std::lock_guard<std::mutex> medium_lock(*state.medium_mu);
    auto peeked = tier.PeekCompressed(handle);
    TS_CHECK(peeked.ok()) << peeked.status().ToString();
    bytes = *peeked;
  }
  auto decompressed = tier.compressor().Decompress(bytes, out);
  TS_CHECK(decompressed.ok()) << decompressed.status().ToString();

  // Unpin; the last unpin retires a tombstoned entry onto the shard-local
  // free list (drained at FlushAccounting).
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    TS_CHECK(it != shard.entries.end());
    --it->second.refs;
    if (it->second.tombstone && it->second.refs == 0) {
      shard.free_list.push_back(it->second.handle);
      shard.entries.erase(it);
    }
    ++shard.delta.loads;
  }

  LoadResult result;
  result.compressed_size = size;
  result.latency = tier.LoadCost(size);
  return result;
}

Status ZswapAccessPath::Invalidate(int tier_id, AccessKey key) {
  TierState& state = StateFor(tier_id);
  CompressedTier& tier = *state.tier;
  Shard& shard = ShardFor(state, key);

  ZPoolHandle handle = 0;
  bool free_now = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it == shard.entries.end() || it->second.tombstone) {
      return NotFound(tier.label() + ": access key not stored");
    }
    ++shard.delta.invalidates;
    if (it->second.refs > 0) {
      it->second.tombstone = true;  // pinned: the last unpin retires it
    } else {
      handle = it->second.handle;
      shard.entries.erase(it);
      free_now = true;
    }
  }
  if (free_now) {
    std::lock_guard<std::mutex> medium_lock(*state.medium_mu);
    const Status freed = tier.FreeUnaccounted(handle);
    TS_CHECK(freed.ok()) << freed.ToString();
  }
  return OkStatus();
}

void ZswapAccessPath::FlushAccounting() {
  for (TierState& state : tiers_) {
    CompressedTier::AccessDelta merged;
    std::vector<ZPoolHandle> to_free;
    for (auto& shard : state.shards) {
      std::lock_guard<std::mutex> lock(shard->mu);
      merged.Accumulate(shard->delta);
      shard->delta = CompressedTier::AccessDelta{};
      to_free.insert(to_free.end(), shard->free_list.begin(), shard->free_list.end());
      shard->free_list.clear();
    }
    if (!to_free.empty()) {
      std::lock_guard<std::mutex> medium_lock(*state.medium_mu);
      for (ZPoolHandle handle : to_free) {
        const Status freed = state.tier->FreeUnaccounted(handle);
        TS_CHECK(freed.ok()) << freed.ToString();
      }
    }
    state.tier->CommitAccessDelta(merged);
  }
}

std::size_t ZswapAccessPath::EntryCount(int tier_id) const {
  TS_CHECK(tier_id >= 0 && static_cast<std::size_t>(tier_id) < tiers_.size());
  const TierState& state = tiers_[static_cast<std::size_t>(tier_id)];
  std::size_t count = 0;
  for (const auto& shard : state.shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    count += shard->entries.size();
  }
  return count;
}

}  // namespace tierscape
