#include "src/zswap/zswap.h"

#include "src/common/logging.h"
#include "src/zswap/access_path.h"

namespace tierscape {

ZswapBackend::ZswapBackend() : ZswapBackend(Observability::Default()) {}

ZswapBackend::ZswapBackend(Observability& obs, FaultInjector* fault)
    : obs_(&obs), fault_(fault) {}

ZswapBackend::~ZswapBackend() = default;

StatusOr<int> ZswapBackend::AddTier(CompressedTierConfig config, Medium& medium) {
  TS_RETURN_IF_ERROR(config.Validate());
  if (access_ != nullptr) {
    return FailedPrecondition("zswap: AddTier after the access path was built (its shard and "
                             "lock tables are resolved at construction, DESIGN.md §4g)");
  }
  if (FindTier(config.label) != -1) {
    return InvalidArgument("zswap: duplicate tier label \"" + config.label + "\"");
  }
  const int tier_id = static_cast<int>(tiers_.size());
  tiers_.push_back(
      std::make_unique<CompressedTier>(tier_id, std::move(config), medium, *obs_, fault_));
  tier_ids_.emplace(tiers_.back()->label(), tier_id);
  return tier_id;
}

int ZswapBackend::FindTier(const std::string& label) const {
  const auto it = tier_ids_.find(label);
  return it == tier_ids_.end() ? -1 : it->second;
}

ZswapAccessPath& ZswapBackend::AccessPath() {
  if (access_ == nullptr) {
    access_ = std::make_unique<ZswapAccessPath>(*this);
  }
  return *access_;
}

StatusOr<ZswapBackend::MigrateResult> ZswapBackend::Migrate(int from_tier, ZPoolHandle handle,
                                                            int to_tier) {
  if (from_tier < 0 || from_tier >= tier_count() || to_tier < 0 || to_tier >= tier_count()) {
    return InvalidArgument("zswap: bad tier id");
  }
  if (from_tier == to_tier) {
    return InvalidArgument("zswap: migration to the same tier");
  }
  CompressedTier& src = *tiers_[from_tier];
  CompressedTier& dst = *tiers_[to_tier];

  std::byte page[kPageSize];
  TS_RETURN_IF_ERROR(src.Load(handle, page));
  auto stored = dst.Store(page);
  if (!stored.ok()) {
    return stored.status();  // kRejected or kOutOfMemory: source left intact
  }
  TS_RETURN_IF_ERROR(src.Invalidate(handle));
  MigrateResult result;
  result.store = *stored;
  result.latency = src.NominalLoadCost() + stored->latency;
  return result;
}

std::size_t ZswapBackend::total_pool_bytes() const {
  std::size_t total = 0;
  for (const auto& tier : tiers_) {
    total += tier->pool_bytes();
  }
  return total;
}

std::size_t ZswapBackend::total_stored_pages() const {
  std::size_t total = 0;
  for (const auto& tier : tiers_) {
    total += tier->stored_pages();
  }
  return total;
}

}  // namespace tierscape
