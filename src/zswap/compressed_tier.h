// A single compressed memory tier: compression algorithm x pool manager x
// backing medium (§4 of the paper). Pages stored here are really compressed
// and really placed in the pool on the backing medium, so compression ratios,
// fragmentation, and capacity pressure are measured rather than assumed.
//
// Virtual-time cost model (per 4 KiB page):
//   store = compress(algorithm) + pool insert
//   load  = pool lookup overhead + read of the compressed bytes from the
//           backing medium (per-cacheline) + decompress(algorithm)
// which reproduces the paper's observation (§3.3) that first-access latency
// is set by algorithm + pool manager + medium + actual data compressibility.
#ifndef SRC_ZSWAP_COMPRESSED_TIER_H_
#define SRC_ZSWAP_COMPRESSED_TIER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/compress/compressor.h"
#include "src/mem/medium.h"
#include "src/obs/observability.h"
#include "src/zpool/zpool.h"

namespace tierscape {

class FaultInjector;

struct CompressedTierConfig {
  std::string label;  // e.g. "C7", "CT-1"
  Algorithm algorithm = Algorithm::kLzo;
  PoolManager pool_manager = PoolManager::kZsmalloc;
  // Pages whose compressed size exceeds this fraction of the page are
  // rejected, mirroring zswap's refusal of incompressible data (footnote 1).
  double max_store_ratio = 0.9;

  // Rejects nonsensical knobs (empty label, ratio outside (0, 1]) before any
  // tier state is built; ZswapBackend::AddTier calls this upfront.
  Status Validate() const;
};

class CompressedTier {
 public:
  struct StoreResult {
    ZPoolHandle handle = 0;
    std::uint32_t compressed_size = 0;
    Nanos latency = 0;
  };

  struct Stats {
    std::uint64_t stores = 0;
    std::uint64_t rejects = 0;
    std::uint64_t loads = 0;       // decompressions (faults + migrations)
    std::uint64_t faults = 0;      // demand faults only (updated by callers)
    std::uint64_t invalidates = 0;
  };

  // `obs` scopes the tier's "zswap/<label>/..." metrics and its pool's
  // "zpool/<label>/..." metrics; handles resolve here, once (DESIGN.md §4b).
  // `config` must Validate() — AddTier checks upfront, this TS_CHECKs as a
  // backstop. `fault`, when set, can inject store rejections and transient
  // store failures (DESIGN.md §4d).
  CompressedTier(int tier_id, CompressedTierConfig config, Medium& medium, Observability& obs,
                 FaultInjector* fault = nullptr);

  int tier_id() const { return tier_id_; }
  const std::string& label() const { return config_.label; }
  const CompressedTierConfig& config() const { return config_; }
  const Compressor& compressor() const { return *compressor_; }
  ZPool& pool() { return *pool_; }
  const ZPool& pool() const { return *pool_; }
  Medium& medium() { return medium_; }
  const Medium& medium() const { return medium_; }

  // Compresses `page` (must be kPageSize) and stores it. Returns kRejected if
  // the data is not compressible enough, kOutOfMemory if the medium is full,
  // kUnavailable on an injected transient store failure (retry may succeed).
  StatusOr<StoreResult> Store(std::span<const std::byte> page);

  // Stores a page that was already compressed with this tier's algorithm —
  // the compression-cache fast path of the migration pipeline. `compressed`
  // must be exactly what `compressor().Compress` produces for the page's
  // contents; rejection, statistics, pool placement, and the charged
  // virtual-time cost are then identical to Store, only the real compression
  // work is skipped.
  StatusOr<StoreResult> StoreCompressed(std::span<const std::byte> compressed);

  // Decompresses the entry into `out` (must be kPageSize). Does not free.
  Status Load(ZPoolHandle handle, std::span<std::byte> out);

  // Drops a stored entry.
  Status Invalidate(ZPoolHandle handle);

  // --- MPMC access-path primitives (src/zswap/access_path.h, DESIGN.md §4g) --
  // The sharded access path splits every tier operation into a pure pool
  // mutation (done under ZswapAccessPath's per-medium allocation lock) and an
  // orderless accounting delta committed later on a sequential path. None of
  // the methods below touch stats_, metric handles, or gauges.

  // True when `compressed_size` passes the zswap rejection threshold
  // (footnote 1) — the pure half of StoreCompressed's reject decision.
  bool WithinStoreRatio(std::size_t compressed_size) const {
    return compressed_size <= static_cast<std::size_t>(config_.max_store_ratio * kPageSize);
  }

  // Places already-compressed bytes in the pool. Grant/capacity semantics are
  // identical to StoreCompressed (kOutOfMemory at the grant, pool status
  // otherwise); fault hooks are deliberately NOT consulted — injection is
  // only legal on sequential paths (DESIGN.md §4d). The caller must hold the
  // owning medium's allocation lock when other access-path callers may be
  // mutating any pool on the same medium.
  StatusOr<ZPoolHandle> PlaceUnaccounted(std::span<const std::byte> compressed);

  // Read-only view of a stored entry's compressed bytes — const and, on
  // instrumented pools, uncounted. Resolve the span under the medium lock;
  // the bytes themselves stay valid until the entry is freed, so the caller
  // may decompress outside every lock.
  StatusOr<std::span<const std::byte>> PeekCompressed(ZPoolHandle handle) const {
    return pool_->Peek(handle);
  }

  // Frees an entry without touching statistics or gauges (same lock rule as
  // PlaceUnaccounted).
  Status FreeUnaccounted(ZPoolHandle handle) { return pool_->Free(handle); }

  // Orderless accounting produced by concurrent access-path callers: every
  // field is a sum over a set of operations, so the merged value is
  // independent of wall-clock interleaving (DESIGN.md §4g).
  struct AccessDelta {
    std::uint64_t stores = 0;
    std::uint64_t rejects = 0;
    std::uint64_t loads = 0;
    std::uint64_t invalidates = 0;
    std::uint64_t compressed_bytes = 0;  // summed over successful stores
    bool Empty() const {
      return stores == 0 && rejects == 0 && loads == 0 && invalidates == 0;
    }
    void Accumulate(const AccessDelta& other) {
      stores += other.stores;
      rejects += other.rejects;
      loads += other.loads;
      invalidates += other.invalidates;
      compressed_bytes += other.compressed_bytes;
    }
  };

  // Applies a merged delta to the tier's stats and counters and republishes
  // the occupancy gauges. Sequential paths only (the submitting thread, at a
  // deterministic commit point such as ZswapAccessPath::FlushAccounting).
  void CommitAccessDelta(const AccessDelta& delta);

  // Charges `n` loads to stats/counters without re-decompressing — the
  // migration fan-out decompresses compressed sources in phase-1 workers via
  // PeekCompressed and commits their statistics here, in page order (phase 2).
  void CommitLoads(std::uint64_t n) {
    stats_.loads += n;
    m_loads_->Add(n);
  }

  // Virtual-time cost of loading an entry of the given compressed size.
  Nanos LoadCost(std::size_t compressed_size) const;
  // Expected load cost for a typical entry (used by the placement models).
  Nanos NominalLoadCost() const;
  Nanos StoreCost(std::size_t compressed_size) const;

  // Number of pages currently stored (objects in the pool).
  std::size_t stored_pages() const { return pool_->object_count(); }
  // Real memory held on the backing medium.
  std::size_t pool_bytes() const { return pool_->pool_bytes(); }
  // Measured compression ratio including pool fragmentation: pool bytes per
  // stored original byte. In (0, 1] for useful tiers.
  double EffectiveRatio() const;

  const Stats& stats() const { return stats_; }
  // Compressed bytes summed over every successful store (the numerator of
  // NominalLoadCost's running average; never decremented by invalidates).
  std::uint64_t total_compressed_bytes() const { return total_compressed_bytes_; }
  void RecordFault() {
    ++stats_.faults;
    m_faults_->Add();
  }

  // --- Grant cap (multi-tenant arbitration, DESIGN.md §4f) -----------------
  // Soft high-water partition of this tier's pool footprint: a store that
  // finds pool_bytes() at or above the grant fails with kOutOfMemory — the
  // same status genuine medium exhaustion produces, so the migration
  // pipeline's partial-placement path absorbs it. Existing entries are never
  // evicted by shrinking the grant; the cap only gates new stores. Defaults
  // to no cap.
  void set_grant_bytes(std::size_t bytes) { grant_bytes_ = bytes; }
  std::size_t grant_bytes() const { return grant_bytes_; }

  // Normalized dollars for the pool's current footprint.
  double UsedCost() const { return BytesToGiB(pool_bytes()) * medium_.cost_per_gib(); }

 private:
  void UpdateOccupancyGauges();

  int tier_id_;
  CompressedTierConfig config_;
  Medium& medium_;
  FaultInjector* fault_;
  std::size_t grant_bytes_ = ~std::size_t{0};  // no cap until an arbiter says so
  const Compressor* compressor_;
  std::unique_ptr<ZPool> pool_;
  Stats stats_;
  // Running average of compressed sizes, for NominalLoadCost.
  std::uint64_t total_compressed_bytes_ = 0;
  std::uint64_t total_stored_ = 0;
  // Metric handles resolved once at construction (obs/metrics.h contract).
  Counter* m_stores_;
  Counter* m_rejects_;
  Counter* m_loads_;
  Counter* m_faults_;
  Counter* m_invalidates_;
  Counter* m_compressed_bytes_;
  Gauge* m_pool_bytes_;
  Gauge* m_stored_pages_;
};

}  // namespace tierscape

#endif  // SRC_ZSWAP_COMPRESSED_TIER_H_
