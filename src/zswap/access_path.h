// Concurrent MPMC access path through ZswapBackend (DESIGN.md §4g).
//
// The sequential CompressedTier API assumes one caller; production zswap
// traffic is many-producer/many-consumer — tenant shards and migration push
// threads hitting the compressed tiers at once (ROADMAP item 2, the "tyche"
// direction; TPP observes promotion latency is dominated by contention on
// exactly this path). This class makes the tiers safely concurrent without
// letting wall-clock interleaving reach virtual time:
//
//  * Hash-sharded per-tier entry maps with lock striping: each tier's
//    key→entry map is split across `shards_per_tier` stripes, each with its
//    own mutex, so operations on different keys rarely contend.
//  * Refcounted entries: a load pins its entry (refs+1) and decompresses
//    OUTSIDE every lock — the dominant cost runs fully parallel — so loads
//    never block stores/invalidates to other entries. Invalidating a pinned
//    entry tombstones it; the last unpin retires it onto the shard's local
//    free list.
//  * Per-medium allocation locks: tiers may share a backing Medium (the
//    standard mixes put several pools on NVMM), so every pool/medium
//    mutation — and every span resolution — serializes on a lock resolved
//    per distinct Medium at construction (§4b handle-resolution spirit).
//    Lock order is shard → medium, never the reverse.
//  * Shard-local accounting: statistics accumulate into a per-shard
//    CompressedTier::AccessDelta (sums only, so the merged value is
//    independent of interleaving) and roll up to the existing tier gauges
//    only at FlushAccounting(), a deterministic commit point on the
//    submitting thread.
//
// Determinism contract (thread_pool.h, DESIGN.md §4c/§4g): returned
// latencies are pure functions of the entry's compressed size
// (CompressedTier::{Store,Load}Cost), so callers on a ThreadPool compute
// them into disjoint per-index slots and charge virtual time on the
// submitting thread in ascending-index order. Deterministic harnesses
// partition keys across workers (disjoint keys); concurrent operations on
// the SAME key serialize safely but their statuses depend on wall-clock
// order, so overlapping keys are for invariant (stress/TSan) testing only.
// Occupancy gauges published by FlushAccounting are order-independent in
// their counter components (sums); pool-page packing (zbud pairing) is
// allocation-order-dependent mid-stream, so harnesses that export metrics
// drain their entries first (micro_access does; EXPERIMENTS.md).
//
// Fault injection is deliberately bypassed: hooks are only legal on
// sequential paths (DESIGN.md §4d). Faulted experiments drive tiers through
// the sequential CompressedTier API.
#ifndef SRC_ZSWAP_ACCESS_PATH_H_
#define SRC_ZSWAP_ACCESS_PATH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/logging.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/zswap/zswap.h"

namespace tierscape {

// Caller-chosen stable entry key (page number, tenant-scoped id, ...).
using AccessKey = std::uint64_t;

struct AccessPathConfig {
  // Lock stripes per tier; rounded up to a power of two. 16 keeps stripe
  // collisions rare at 8 concurrent callers while per-shard maps stay small.
  std::size_t shards_per_tier = 16;

  Status Validate() const;
};

class ZswapAccessPath {
 public:
  struct StoreResult {
    std::uint32_t compressed_size = 0;
    Nanos latency = 0;  // pure function of the compressed size (StoreCost)
  };
  struct LoadResult {
    std::uint32_t compressed_size = 0;
    Nanos latency = 0;  // pure function of the compressed size (LoadCost)
  };

  // Builds shards and per-medium locks over the backend's currently
  // registered tiers. Tiers added to the backend afterwards are not visible;
  // ZswapBackend::AddTier refuses once its access path exists.
  explicit ZswapAccessPath(ZswapBackend& backend, AccessPathConfig config = {});

  ZswapAccessPath(const ZswapAccessPath&) = delete;
  ZswapAccessPath& operator=(const ZswapAccessPath&) = delete;

  ZswapBackend& backend() { return *backend_; }
  std::size_t shards_per_tier() const { return config_.shards_per_tier; }

  // --- MPMC operations: any number of threads may call these concurrently --

  // Compresses `page` (must be kPageSize) and stores it under (tier, key).
  // kRejected mirrors CompressedTier::Store (incompressible — a pure function
  // of the contents), kOutOfMemory means medium/grant exhaustion, and
  // kFailedPrecondition reports a key that is already stored.
  StatusOr<StoreResult> Store(int tier_id, AccessKey key, std::span<const std::byte> page);

  // Decompresses the entry into `out` (must be kPageSize), pinning it for the
  // duration so concurrent invalidates of the same key and frees of other
  // entries can never pull the bytes out from under the decompressor.
  // kNotFound when the key is absent (or already tombstoned).
  StatusOr<LoadResult> Load(int tier_id, AccessKey key, std::span<std::byte> out);

  // Drops the entry. If loads currently pin it, the entry is tombstoned and
  // retired onto the shard's free list by the last unpin (its pool bytes
  // return at the next FlushAccounting); otherwise the pool entry is freed
  // immediately. kNotFound when absent or already tombstoned.
  Status Invalidate(int tier_id, AccessKey key);

  // --- Sequential commit points (submitting thread only) -------------------

  // Rolls every shard's accounting delta up to the tier's stats, counters,
  // and occupancy gauges (CompressedTier::CommitAccessDelta) and frees
  // tombstoned entries parked on shard free lists. Deterministic given
  // deterministic per-worker operation sets: every committed value is a sum.
  void FlushAccounting();

  // Entries currently stored in the tier's shards (tombstoned ones included).
  // Takes each shard lock in turn; meant for sequential validation points.
  std::size_t EntryCount(int tier_id) const;

 private:
  struct Entry {
    ZPoolHandle handle = 0;
    std::uint32_t compressed_size = 0;
    std::uint32_t refs = 0;    // outstanding pinned loads
    bool tombstone = false;    // invalidated while pinned; freed at last unpin
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<AccessKey, Entry> entries;
    CompressedTier::AccessDelta delta;          // rolled up by FlushAccounting
    std::vector<ZPoolHandle> free_list;         // tombstones retired by unpin
  };

  struct TierState {
    CompressedTier* tier = nullptr;
    std::mutex* medium_mu = nullptr;  // shared by every tier on this Medium
    std::vector<std::unique_ptr<Shard>> shards;
  };

  Shard& ShardFor(TierState& state, AccessKey key) const {
    // Fibonacci hashing spreads adjacent keys across stripes.
    return *state.shards[(key * 0x9E3779B97F4A7C15ull) >> shard_shift_];
  }
  TierState& StateFor(int tier_id) {
    TS_CHECK(tier_id >= 0 && static_cast<std::size_t>(tier_id) < tiers_.size());
    return tiers_[tier_id];
  }

  ZswapBackend* backend_;
  AccessPathConfig config_;
  int shard_shift_ = 0;  // 64 - log2(shards_per_tier)
  std::vector<std::unique_ptr<std::mutex>> medium_locks_;  // one per distinct Medium
  std::vector<TierState> tiers_;
};

}  // namespace tierscape

#endif  // SRC_ZSWAP_ACCESS_PATH_H_
