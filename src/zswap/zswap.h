// Multi-active-tier zswap backend.
//
// Stock Linux supports exactly one active zswap pool; the paper's kernel
// patch (§7.1) adds multiple simultaneously-active compressed tiers, a
// backing-media parameter, per-tier statistics, and page migration between
// tiers. This class is the userspace equivalent of that patched subsystem:
// TS-Daemon talks to it the way it would talk to the patched kernel.
#ifndef SRC_ZSWAP_ZSWAP_H_
#define SRC_ZSWAP_ZSWAP_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/zswap/compressed_tier.h"

namespace tierscape {

class ZswapAccessPath;

class ZswapBackend {
 public:
  // Observability is constructor-injected (DESIGN.md §4b): every tier and
  // pool added later resolves its metric handles against `obs`, so there is
  // no half-initialized window in which a set_obs call could be missed. The
  // default constructor is the one factory overload for the common
  // process-wide case. `fault` (optional) is handed to every tier for store
  // fault injection (DESIGN.md §4d).
  ZswapBackend();
  explicit ZswapBackend(Observability& obs, FaultInjector* fault = nullptr);
  ZswapBackend(const ZswapBackend&) = delete;
  ZswapBackend& operator=(const ZswapBackend&) = delete;
  // Special members live out of line: ZswapAccessPath is incomplete here.
  ~ZswapBackend();

  Observability& obs() const { return *obs_; }
  FaultInjector* fault() const { return fault_; }

  // Registers a new active tier backed by `medium` (must outlive the backend)
  // and returns its tier id. Fails upfront — before any tier state is built —
  // on an invalid config or a duplicate label.
  StatusOr<int> AddTier(CompressedTierConfig config, Medium& medium);

  int tier_count() const { return static_cast<int>(tiers_.size()); }
  CompressedTier& tier(int tier_id) { return *tiers_.at(tier_id); }
  const CompressedTier& tier(int tier_id) const { return *tiers_.at(tier_id); }

  // Finds a tier by label ("C7", "CT-1", ...); -1 if absent. O(1): the
  // label→id index is built at AddTier time (handle-resolution-at-
  // construction spirit), not rescanned per lookup — policy code resolves
  // tiers by label on per-window hot paths.
  int FindTier(const std::string& label) const;

  // Builds (first call) and returns the concurrent MPMC access path over the
  // currently registered tiers (src/zswap/access_path.h, DESIGN.md §4g).
  // Call after tier registration is complete: AddTier refuses once the
  // access path exists, so the path's shard/lock tables — resolved at its
  // construction — can never go stale.
  ZswapAccessPath& AccessPath();

  struct MigrateResult {
    CompressedTier::StoreResult store;
    Nanos latency = 0;  // decompress from source + compress into destination
  };

  // Moves one entry between tiers using the naive decompress-then-recompress
  // path (§7.1). On success the source entry is invalidated. On kRejected the
  // source entry is left untouched (the destination cannot hold the data).
  StatusOr<MigrateResult> Migrate(int from_tier, ZPoolHandle handle, int to_tier);

  // Sum of real pool bytes across all tiers.
  std::size_t total_pool_bytes() const;
  // Sum of stored (original) pages across all tiers.
  std::size_t total_stored_pages() const;

 private:
  Observability* obs_;
  FaultInjector* fault_;
  std::vector<std::unique_ptr<CompressedTier>> tiers_;
  std::unordered_map<std::string, int> tier_ids_;  // label → tier id (FindTier)
  std::unique_ptr<ZswapAccessPath> access_;        // built on first AccessPath()
};

}  // namespace tierscape

#endif  // SRC_ZSWAP_ZSWAP_H_
