// PEBS-style access sampler.
//
// TS-Daemon profiles applications with Intel PEBS on
// MEM_INST_RETIRED.ALL_LOADS / ALL_STORES at a sampling period of 5000
// (§7.2). In the simulation, every memory access the workload performs flows
// through OnAccess(); one in `period` events produces a sample carrying the
// virtual address, exactly the telemetry PEBS would deliver. Samples are
// aggregated at 2 MiB region granularity.
#ifndef SRC_TELEMETRY_SAMPLER_H_
#define SRC_TELEMETRY_SAMPLER_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"
#include "src/fault/fault_injector.h"

namespace tierscape {

// Region index of a virtual address (2 MiB granularity).
constexpr std::uint64_t RegionOf(std::uint64_t vaddr) { return vaddr / kRegionSize; }

class PebsSampler {
 public:
  // 1-in-5000 sampling mirrors the paper's PEBS rate for
  // MEM_INST_RETIRED.ALL_LOADS/STORES (§7.1; DESIGN.md §2). `fault`, when
  // set, can drop a burst of samples at window drain (PEBS buffer overflow;
  // DESIGN.md §4d).
  explicit PebsSampler(std::uint64_t period = 5000, FaultInjector* fault = nullptr)
      : period_(period), fault_(fault) {}

  // Feeds one retired load/store. Deterministic 1-in-period sampling.
  void OnAccess(std::uint64_t vaddr, bool is_store) { OnAccessN(vaddr, 1, is_store); }

  // Feeds `count` consecutive loads/stores hitting the same page (e.g. the
  // cachelines of one value read).
  void OnAccessN(std::uint64_t vaddr, std::uint64_t count, bool is_store) {
    total_events_ += count;
    countdown_ += count;
    while (countdown_ >= period_) {
      countdown_ -= period_;
      ++total_samples_;
      const std::uint32_t region_count = ++window_samples_[RegionOf(vaddr)];
      if (streak_threshold_ != 0 && region_count == streak_threshold_) {
        // K-hit streak (DESIGN.md §4h): queued exactly once per region per
        // window, in the deterministic order the thresholds were crossed.
        streak_ready_.push_back(RegionOf(vaddr));
      }
      if (is_store) {
        ++store_samples_;
      }
    }
  }

  // Returns and clears the per-region sample counts for the current window.
  // An injected kSamplerDrop fault discards a burst of samples in ascending
  // region order (a deterministic stand-in for PEBS overflow, which loses
  // whatever happened to be in the buffer); dropped counts are tallied under
  // fault/sampler/dropped_samples.
  std::unordered_map<std::uint64_t, std::uint32_t> DrainWindow() {
    auto out = std::move(window_samples_);
    window_samples_.clear();
    streak_ready_.clear();  // stale streaks must not leak across the boundary
    if (fault_ != nullptr && fault_->ShouldFail(FaultSite::kSamplerDrop)) {
      std::vector<std::uint64_t> regions;
      regions.reserve(out.size());
      for (const auto& [region, count] : out) {
        regions.push_back(region);
      }
      std::sort(regions.begin(), regions.end());
      std::uint64_t remaining = fault_->config().sampler_drop_burst;
      for (const std::uint64_t region : regions) {
        if (remaining == 0) {
          break;
        }
        auto it = out.find(region);
        const std::uint64_t taken = std::min<std::uint64_t>(it->second, remaining);
        remaining -= taken;
        dropped_samples_ += taken;
        fault_->CountDroppedSamples(taken);
        it->second -= static_cast<std::uint32_t>(taken);
        if (it->second == 0) {
          out.erase(it);
        }
      }
    }
    return out;
  }

  // K-hit streak detection for the sub-window fast path (DESIGN.md §4h):
  // when `k` > 0, a region crossing `k` samples within the current window is
  // queued for TakeStreakRegions(), once per window. 0 disarms detection.
  // Armed by FastPath at construction and at each window boundary — never
  // mid-window, so the crossing order stays a pure function of the access
  // stream.
  void set_streak_threshold(std::uint32_t k) { streak_threshold_ = k; }
  std::uint32_t streak_threshold() const { return streak_threshold_; }

  // Returns and clears the regions whose streaks crossed the threshold since
  // the last take, in crossing order. DrainWindow discards pending streaks —
  // a streak must not outlive the window whose samples produced it.
  std::vector<std::uint64_t> TakeStreakRegions() {
    std::vector<std::uint64_t> out = std::move(streak_ready_);
    streak_ready_.clear();
    return out;
  }

  std::uint64_t period() const { return period_; }
  std::uint64_t total_events() const { return total_events_; }
  std::uint64_t total_samples() const { return total_samples_; }
  std::uint64_t store_samples() const { return store_samples_; }
  std::uint64_t dropped_samples() const { return dropped_samples_; }

 private:
  std::uint64_t period_;
  FaultInjector* fault_ = nullptr;
  std::uint64_t countdown_ = 0;
  std::uint64_t total_events_ = 0;
  std::uint64_t total_samples_ = 0;
  std::uint64_t store_samples_ = 0;
  std::uint64_t dropped_samples_ = 0;
  std::uint32_t streak_threshold_ = 0;  // 0 = streak detection disarmed
  std::vector<std::uint64_t> streak_ready_;
  std::unordered_map<std::uint64_t, std::uint32_t> window_samples_;
};

}  // namespace tierscape

#endif  // SRC_TELEMETRY_SAMPLER_H_
