#include "src/telemetry/hotness.h"

#include <algorithm>

#include "src/common/histogram.h"

namespace tierscape {

void HotnessTable::Track(std::uint64_t region) { hotness_.try_emplace(region, 0.0); }

void HotnessTable::EndWindow(
    const std::unordered_map<std::uint64_t, std::uint32_t>& window_samples) {
  ++windows_seen_;
  for (auto& [region, value] : hotness_) {
    value *= 0.5;  // EWMA cooling: halve per window (§3.1 gradual cooling; DESIGN.md §2)
  }
  for (const auto& [region, count] : window_samples) {
    hotness_[region] += static_cast<double>(count);
  }
}

double HotnessTable::Hotness(std::uint64_t region) const {
  auto it = hotness_.find(region);
  return it == hotness_.end() ? 0.0 : it->second;
}

double HotnessTable::Percentile(double pct) const {
  if (hotness_.empty()) {
    return 0.0;
  }
  std::vector<double> values;
  values.reserve(hotness_.size());
  for (const auto& [region, value] : hotness_) {
    values.push_back(value);
  }
  return ExactPercentile(std::move(values), pct / 100.0);
}

std::vector<std::pair<std::uint64_t, double>> HotnessTable::Snapshot() const {
  std::vector<std::pair<std::uint64_t, double>> out(hotness_.begin(), hotness_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tierscape
