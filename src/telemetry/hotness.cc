#include "src/telemetry/hotness.h"

#include <algorithm>
#include <cmath>

#include "src/common/histogram.h"

namespace tierscape {

void HotnessTable::Track(std::uint64_t region) { hotness_.try_emplace(region, 0.0); }

void HotnessTable::EndWindow(
    const std::unordered_map<std::uint64_t, std::uint32_t>& window_samples) {
  ++windows_seen_;
  for (auto& [region, value] : hotness_) {
    value *= 0.5;  // EWMA cooling: halve per window (§3.1 gradual cooling; DESIGN.md §2)
  }
  for (const auto& [region, count] : window_samples) {
    hotness_[region] += static_cast<double>(count);
  }
  // Refresh buckets and per-window changed flags (DESIGN.md §4e). Note the
  // halving moves every raw value but a steady region's bucket is a fixpoint:
  // halving drops it one bucket and the fresh samples put it back.
  for (const auto& [region, value] : hotness_) {
    const int bucket = BucketOf(value);
    auto [it, inserted] = buckets_.try_emplace(region, BucketState{bucket, true});
    if (!inserted) {
      it->second.changed = it->second.bucket != bucket;
      it->second.bucket = bucket;
    }
  }
  // Fold in mid-window ForceChanged marks (§4h fast-path promotions): the
  // region's placement moved even if its bucket did not, so the warm-start
  // bitmap must flag it for this boundary's solve.
  for (const std::uint64_t region : forced_changed_) {
    auto it = buckets_.find(region);
    if (it != buckets_.end()) {
      it->second.changed = true;
    }
  }
  forced_changed_.clear();
}

void HotnessTable::ForceChanged(std::uint64_t region) { forced_changed_.push_back(region); }

double HotnessTable::Hotness(std::uint64_t region) const {
  auto it = hotness_.find(region);
  return it == hotness_.end() ? 0.0 : it->second;
}

int HotnessTable::BucketOf(double hotness) {
  if (!(hotness >= 1.0)) {
    return 0;  // below one decayed sample: cold
  }
  return 1 + std::ilogb(hotness);
}

double HotnessTable::BucketValue(int bucket) {
  if (bucket <= 0) {
    return 0.0;
  }
  // Geometric midpoint of [2^(bucket-1), 2^bucket).
  return 1.5 * std::ldexp(1.0, bucket - 1);
}

int HotnessTable::Bucket(std::uint64_t region) const {
  auto it = buckets_.find(region);
  return it == buckets_.end() ? 0 : it->second.bucket;
}

double HotnessTable::BucketedHotness(std::uint64_t region) const {
  return BucketValue(Bucket(region));
}

bool HotnessTable::BucketChanged(std::uint64_t region) const {
  auto it = buckets_.find(region);
  return it == buckets_.end() || it->second.changed;
}

std::vector<std::uint8_t> HotnessTable::ChangedBitmap(std::uint64_t n_regions) const {
  std::vector<std::uint8_t> changed(n_regions, 1);
  for (std::uint64_t region = 0; region < n_regions; ++region) {
    changed[region] = BucketChanged(region) ? 1 : 0;
  }
  return changed;
}

double HotnessTable::Percentile(double pct) const {
  if (hotness_.empty()) {
    return 0.0;
  }
  std::vector<double> values;
  values.reserve(hotness_.size());
  for (const auto& [region, value] : hotness_) {
    values.push_back(value);
  }
  return ExactPercentile(std::move(values), pct / 100.0);
}

std::vector<std::pair<std::uint64_t, double>> HotnessTable::Snapshot() const {
  std::vector<std::pair<std::uint64_t, double>> out(hotness_.begin(), hotness_.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tierscape
