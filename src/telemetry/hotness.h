// Region hotness tracking with gradual cooling.
//
// Hot pages do not become cold instantaneously (§3.1): hotness is an
// exponentially-decayed accumulation of per-window sample counts
// (HeMem-style: halve on window boundary, add fresh samples), so regions age
// hot -> warm -> cold across windows. The percentile helper implements the
// percentile-based thresholding the evaluation uses instead of static
// thresholds (§8.1).
//
// Bucketized hotness (DESIGN.md §4e): the raw EWMA value changes at *every*
// window boundary (the halving alone moves it), so any consumer keyed on the
// exact value sees 100% churn. The table therefore also maintains a log2
// hotness bucket per region — stable across windows for regions whose
// sampling rate is steady — plus a per-window changed-bucket flag. The
// incremental MCKP path consumes the bucketized value and the changed bitmap
// so its per-window work scales with real churn, not with the halving.
#ifndef SRC_TELEMETRY_HOTNESS_H_
#define SRC_TELEMETRY_HOTNESS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace tierscape {

class HotnessTable {
 public:
  // Registers a region so it is tracked (and reported cold) even if it never
  // produces a sample.
  void Track(std::uint64_t region);

  // Ages all tracked regions (halves hotness), then folds in the window's
  // sample counts and refreshes every region's bucket + changed flag.
  void EndWindow(const std::unordered_map<std::uint64_t, std::uint32_t>& window_samples);

  double Hotness(std::uint64_t region) const;

  // Log2 bucket of a hotness value: 0 for values below one sample, else
  // 1 + floor(log2(hotness)). Pure and monotone, so bucket order follows
  // hotness order.
  static int BucketOf(double hotness);
  // Canonical hotness for a bucket (the geometric midpoint of its range):
  // every region in a bucket maps to the same value, which is what makes
  // consecutive windows byte-identical for bucket-stable regions.
  static double BucketValue(int bucket);

  // The region's bucket as of the last EndWindow (0 when never sampled).
  int Bucket(std::uint64_t region) const;
  // BucketValue(Bucket(region)) — the stability-preserving hotness feed.
  double BucketedHotness(std::uint64_t region) const;
  // True when the region's bucket moved at the last EndWindow (also true for
  // a region's first window — no previous bucket to be stable against).
  bool BucketChanged(std::uint64_t region) const;
  // Marks a region changed for the *next* EndWindow regardless of whether its
  // bucket moves — the §4h fast path calls this after a mid-window promotion
  // so the warm-start solver re-solves the region even when its sampling rate
  // (and thus its bucket) stayed steady. Consumed and cleared by EndWindow.
  void ForceChanged(std::uint64_t region);
  // Changed flags for regions [0, n_regions) as a dense bitmap (1 = bucket
  // changed at the last EndWindow; untracked regions report changed). This is
  // the warm-start hint handed to MckpSolver::Solve via
  // PlacementInput::changed_hint.
  std::vector<std::uint8_t> ChangedBitmap(std::uint64_t n_regions) const;

  // Hotness value at the given percentile (0..100) across tracked regions.
  double Percentile(double pct) const;

  // All tracked regions with their hotness, sorted by region id.
  std::vector<std::pair<std::uint64_t, double>> Snapshot() const;

  std::size_t tracked_regions() const { return hotness_.size(); }
  std::uint64_t windows_seen() const { return windows_seen_; }

 private:
  struct BucketState {
    int bucket = 0;
    bool changed = true;  // first window counts as a change
  };

  std::unordered_map<std::uint64_t, double> hotness_;
  std::unordered_map<std::uint64_t, BucketState> buckets_;
  std::vector<std::uint64_t> forced_changed_;  // pending ForceChanged marks
  std::uint64_t windows_seen_ = 0;
};

}  // namespace tierscape

#endif  // SRC_TELEMETRY_HOTNESS_H_
