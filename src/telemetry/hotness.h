// Region hotness tracking with gradual cooling.
//
// Hot pages do not become cold instantaneously (§3.1): hotness is an
// exponentially-decayed accumulation of per-window sample counts
// (HeMem-style: halve on window boundary, add fresh samples), so regions age
// hot -> warm -> cold across windows. The percentile helper implements the
// percentile-based thresholding the evaluation uses instead of static
// thresholds (§8.1).
#ifndef SRC_TELEMETRY_HOTNESS_H_
#define SRC_TELEMETRY_HOTNESS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace tierscape {

class HotnessTable {
 public:
  // Registers a region so it is tracked (and reported cold) even if it never
  // produces a sample.
  void Track(std::uint64_t region);

  // Ages all tracked regions (halves hotness), then folds in the window's
  // sample counts.
  void EndWindow(const std::unordered_map<std::uint64_t, std::uint32_t>& window_samples);

  double Hotness(std::uint64_t region) const;

  // Hotness value at the given percentile (0..100) across tracked regions.
  double Percentile(double pct) const;

  // All tracked regions with their hotness, sorted by region id.
  std::vector<std::pair<std::uint64_t, double>> Snapshot() const;

  std::size_t tracked_regions() const { return hotness_.size(); }
  std::uint64_t windows_seen() const { return windows_seen_; }

 private:
  std::unordered_map<std::uint64_t, double> hotness_;
  std::uint64_t windows_seen_ = 0;
};

}  // namespace tierscape

#endif  // SRC_TELEMETRY_HOTNESS_H_
