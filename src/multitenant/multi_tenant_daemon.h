// Multi-tenant colocation (DESIGN.md §4f, Figure 16).
//
// MultiTenantDaemon hosts N independent tenants — each with its own workload,
// address space, tiered assembly, TS-Daemon, observability scope, and
// SplitSeed-derived seed — over shared DRAM and compressed-pool capacity. A
// GlobalArbiter re-divides the shared pools at every window boundary; grants
// are enforced by the Medium / CompressedTier grant caps, so a tenant at its
// grant experiences ordinary capacity pressure (spill, shortfall, degraded
// promotes) rather than failure.
//
// Determinism (thread_pool.h invariant): per-tenant window shards run
// concurrently on the daemon's pool, but each worker touches only its
// tenant's slot (engine, daemon, observability, demand scratch). Arbiter
// decisions, grant application, virtual-time charges, and parent-scope metric
// updates all happen on the orchestrator thread in ascending tenant order,
// so results are byte-identical across pool sizes
// (MultiTenantTest.DeterministicAcrossThreads).
#ifndef SRC_MULTITENANT_MULTI_TENANT_DAEMON_H_
#define SRC_MULTITENANT_MULTI_TENANT_DAEMON_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/tier_specs.h"
#include "src/core/ts_daemon.h"
#include "src/multitenant/arbiter.h"
#include "src/tiering/engine.h"

namespace tierscape {

class ZswapAccessPath;

// A tenant's application: mirrors the Workload interface (workloads layer
// sits above this one, so the shape is restated here; WorkloadTenantApp in
// src/workloads/tenant_mix.h adapts any Workload).
class TenantApp {
 public:
  virtual ~TenantApp() = default;
  virtual std::string_view name() const = 0;
  // Reserves the tenant's segments. Called once, before its engine exists.
  virtual void Reserve(AddressSpace& space) = 0;
  // Optional warm-up (not measured).
  virtual void Populate(TieringEngine& engine) {}
  // Executes one operation and returns its latency.
  virtual Nanos Op(TieringEngine& engine) = 0;
};

struct TenantSpec {
  std::string label;      // unique per daemon; names the metric subtree
  double priority = 1.0;  // weight under kPriorityWeighted
  // TCO knob for this tenant's placement policy: >= 0 runs the analytical
  // model at that alpha (its marginal gradient feeds the utility arbiter);
  // < 0 runs the Waterfall baseline (bids zero).
  double alpha = 0.35;
};

struct MultiTenantConfig {
  ArbiterConfig arbiter;
  // Per-tenant assembly template. dram_bytes is overridden with the arbiter's
  // DRAM pool size (every tenant sees the whole medium; the grant cap is the
  // partition); obs/fault seeds are replaced per tenant.
  SystemConfig system;
  EngineConfig engine;  // migrate_threads forced to 1 when threads > 1
  DaemonConfig daemon;  // window_ops overridden to ops_per_window (§4h shards)
  std::uint64_t ops_per_window = 2000;  // per tenant
  std::uint64_t windows = 8;
  int threads = 1;  // pool size for per-tenant shards (wall-clock only)
  std::uint64_t base_seed = 42;  // tenant i runs with SplitSeed(base_seed, i)
  bool trace = false;            // enable per-tenant trace recorders
  // Shared compressed side-cache (DESIGN.md §4g): when > 0, the daemon hosts
  // one extra shared Medium + ZswapBackend and every tenant window shard
  // churns (store → load → invalidate) this many entries per window through
  // the concurrent MPMC access path — the MaxMem-style colocation pattern of
  // tenant shards hitting shared compressed media at once. Keys are
  // partitioned by tenant index, latencies are pure functions of compressed
  // size parked in the tenant slot and charged on the orchestrator in
  // ascending tenant order, and all shared accounting commits at the
  // orchestrator's FlushAccounting — so results stay byte-identical across
  // pool sizes. 0 disables the cache (default; paper figures unchanged).
  std::uint64_t shared_cache_ops = 0;
  std::size_t shared_cache_bytes = 64 * kMiB;
  // Parent observability scope (arbiter + aggregate metrics). Null means the
  // process-wide default; tests pass a private instance.
  Observability* obs = nullptr;

  Status Validate() const;
};

class MultiTenantDaemon {
 public:
  // One arbitration round plus the per-tenant standing it saw — what
  // fig16_colocation plots.
  struct WindowRecord {
    std::uint64_t window = 0;
    std::vector<TenantGrant> grants;    // by tenant index
    std::vector<TenantDemand> demands;  // standing the grants were based on
    double aggregate_tco = 0.0;
    double aggregate_tco_savings = 0.0;  // 1 - sum(tco) / sum(dram_only_tco)
    double max_slowdown = 0.0;
    std::size_t rebalanced_bytes = 0;
  };

  struct TenantResult {
    std::string label;
    double slowdown = 1.0;
    double tco_savings = 0.0;
    std::uint64_t faults = 0;
    std::uint64_t migrated_pages = 0;
    std::size_t final_dram_grant = 0;
  };

  struct Totals {
    double aggregate_tco = 0.0;
    double aggregate_tco_savings = 0.0;
    double mean_slowdown = 1.0;
    double max_slowdown = 1.0;
    std::uint64_t total_faults = 0;
  };

  explicit MultiTenantDaemon(MultiTenantConfig config);

  // Registers a tenant. `make_app` receives the tenant's SplitSeed-derived
  // seed and builds its application. Must be called before Run.
  Status AddTenant(TenantSpec spec,
                   const std::function<StatusOr<std::unique_ptr<TenantApp>>(std::uint64_t seed)>&
                       make_app);

  // Builds every tenant's assembly, runs `windows` rounds of
  // (per-tenant shard -> arbitration -> grant application), records history.
  Status Run();

  const std::vector<WindowRecord>& history() const { return history_; }
  std::vector<TenantResult> TenantResults() const;
  Totals ComputeTotals() const;
  int tenant_count() const { return static_cast<int>(tenants_.size()); }
  GlobalArbiter& arbiter() { return *arbiter_; }

  // Merged deterministic exports: every tenant's metrics under
  // "tenant/<label>/..." plus the parent scope (arbiter/, aggregate/)
  // unprefixed; wall/ metrics excluded. Trace events get one track per
  // tenant, mirroring the bench grid's per-cell merge.
  std::string MergedMetricsJsonl() const;
  std::string MergedTraceJson() const;

 private:
  // Everything one tenant owns. Workers touch exactly one Tenant (their
  // index); the Status/TenantDemand scratch is committed by the orchestrator
  // after the shard barrier.
  struct Tenant {
    TenantSpec spec;
    std::uint64_t seed = 0;
    Observability obs;
    std::unique_ptr<TieredSystem> system;
    AddressSpace space;
    std::unique_ptr<TenantApp> app;
    std::unique_ptr<TieringEngine> engine;
    std::unique_ptr<PlacementPolicy> policy;
    std::unique_ptr<TsDaemon> daemon;
    // Worker-computed results for the current shard.
    Status status;
    TenantDemand demand;
    Nanos shared_cache_ns = 0;          // churn latency, charged at commit
    std::uint64_t shared_cache_seq = 0;  // per-tenant content-seed counter
    // Parent-scope gauges ("tenant/<label>/..."), resolved on the sequential
    // path at Run start.
    Gauge* m_tco_savings = nullptr;
    Gauge* m_slowdown = nullptr;
    Gauge* m_grant_dram = nullptr;
    Gauge* m_grant_ct = nullptr;
    Gauge* m_window_faults = nullptr;
  };

  Status BuildTenant(Tenant& tenant);
  // The parallel shard body: ops_per_window operations, one daemon window,
  // then the tenant's demand snapshot — all slot-owned state.
  void RunTenantShard(Tenant& tenant);
  void SetupTenantShard(Tenant& tenant);  // PlaceInitial + Populate
  void ApplyGrant(Tenant& tenant, const TenantGrant& grant);
  Status BuildSharedCache();
  // Worker-context churn through the MPMC access path: stores, loads, and
  // invalidates this tenant's key partition, accumulating latency into the
  // tenant slot. Drains everything it stores, so the shared pool is empty —
  // and its occupancy gauges deterministic — at every commit point.
  void ChurnSharedCache(Tenant& tenant);

  MultiTenantConfig config_;
  Observability* parent_obs_ = nullptr;  // resolved, never null
  std::unique_ptr<GlobalArbiter> arbiter_;
  // Shared compressed side-cache (only when shared_cache_ops > 0): private
  // obs scope (merged under "shared/cache/"), one medium, one backend, and
  // the MPMC access path the tenant shards hit concurrently.
  std::unique_ptr<Observability> shared_cache_obs_;
  std::unique_ptr<Medium> shared_cache_medium_;
  std::unique_ptr<ZswapBackend> shared_cache_;
  ZswapAccessPath* shared_cache_path_ = nullptr;  // owned by shared_cache_
  int shared_cache_tier_ = -1;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<TenantGrant> grants_;  // current grants, by tenant index
  std::vector<WindowRecord> history_;
  bool ran_ = false;
  Gauge* m_aggregate_tco_ = nullptr;
  Gauge* m_aggregate_savings_ = nullptr;
};

}  // namespace tierscape

#endif  // SRC_MULTITENANT_MULTI_TENANT_DAEMON_H_
