// Global DRAM / compressed-tier arbiter for multi-tenant colocation
// (DESIGN.md §4f). TierScape's single-tenant daemon answers "which tier for
// each region under MY budget"; when N tenants share one box the host must
// first answer "how much DRAM and compressed-pool capacity does each tenant
// get". GlobalArbiter re-divides the shared pools at every window boundary
// under a pluggable policy; grants are enforced by Medium / CompressedTier
// grant caps so a tenant at its grant sees ordinary capacity pressure.
#ifndef SRC_MULTITENANT_ARBITER_H_
#define SRC_MULTITENANT_ARBITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/obs/observability.h"

namespace tierscape {

// How the arbiter weighs tenants when splitting the pools (DESIGN.md §4f).
enum class ArbiterPolicy {
  kStaticShares,      // equal split, never rebalanced — the colocation baseline
  kFairShare,         // proportional to reserved footprint
  kPriorityWeighted,  // proportional to TenantSpec::priority
  kUtility,           // proportional to each tenant's MCKP marginal gradient
                      // (AnalyticalPolicy::Stats::last_marginal_gradient): the
                      // perf a tenant could still buy per extra TCO dollar
};

std::string_view ArbiterPolicyName(ArbiterPolicy policy);

struct ArbiterConfig {
  ArbiterPolicy policy = ArbiterPolicy::kStaticShares;
  // Shared pools the arbiter divides. DRAM frames and compressed-pool bytes
  // are granted separately; NVMM byte-spill capacity stays unpartitioned so a
  // squeezed tenant degrades (spills) instead of failing placement.
  std::size_t dram_pool_bytes = 0;
  std::size_t ct_pool_bytes = 0;
  // Every tenant is guaranteed this fraction of an equal share regardless of
  // weight (anti-starvation floor; the remainder is divided by weight).
  double fair_share_floor = 0.25;
  // EWMA factor applied to the share vector across successive Divide calls:
  // share = smoothing * new + (1 - smoothing) * previous. 1.0 (default)
  // follows the instantaneous weights; lower values damp window-to-window
  // grant oscillation, whose migration churn is pure slowdown (DESIGN.md §4f).
  double share_smoothing = 1.0;
  // Modeled virtual-time cost of one arbitration, charged to every tenant's
  // clock at each window boundary (mirrors the daemon's modeled solver costs;
  // DESIGN.md §4f).
  Nanos decision_cost_ns = 2 * kMicro;

  Status Validate() const;
};

// One tenant's standing in the current window, gathered by MultiTenantDaemon
// from the tenant's engine/daemon on the sequential path.
struct TenantDemand {
  int tenant = 0;
  double priority = 1.0;
  std::size_t footprint_bytes = 0;      // reserved address-space size
  std::size_t resident_dram_bytes = 0;  // currently used DRAM
  std::uint64_t window_faults = 0;      // tier faults during the last window
  double marginal_gradient = 0.0;       // Eq. 2 shadow price (analytical.h)
};

struct TenantGrant {
  std::size_t dram_bytes = 0;
  std::size_t ct_bytes = 0;
};

// Divides the shared pools across tenants. Sequential-path only: Divide
// mutates arbiter metrics and last-grant state, so MultiTenantDaemon calls it
// exclusively from the orchestrator thread between window shards.
class GlobalArbiter {
 public:
  GlobalArbiter(ArbiterConfig config, Observability& obs);

  // Returns one grant per demand, in demand order. Grants are frame-granular
  // and sum exactly to the configured pools (largest-remainder rounding).
  StatusOr<std::vector<TenantGrant>> Divide(const std::vector<TenantDemand>& demands);

  const ArbiterConfig& config() const { return config_; }
  // Total |delta| in granted bytes across the last Divide (0 on the first).
  std::size_t last_rebalanced_bytes() const { return last_rebalanced_bytes_; }

 private:
  ArbiterConfig config_;
  std::vector<double> last_shares_;
  std::vector<TenantGrant> last_grants_;
  std::size_t last_rebalanced_bytes_ = 0;
  Counter* m_decisions_ = nullptr;
  Counter* m_rebalanced_bytes_ = nullptr;
  Gauge* m_last_rebalanced_ = nullptr;
};

}  // namespace tierscape

#endif  // SRC_MULTITENANT_ARBITER_H_
