#include "src/multitenant/multi_tenant_daemon.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/compress/corpus.h"
#include "src/core/analytical.h"
#include "src/core/waterfall.h"
#include "src/obs/export.h"
#include "src/zswap/access_path.h"

namespace tierscape {
namespace {

std::uint64_t SumFaults(const TsDaemon::WindowRecord& record) {
  std::uint64_t total = 0;
  for (const std::uint64_t f : record.faults) {
    total += f;
  }
  return total;
}

}  // namespace

Status MultiTenantConfig::Validate() const {
  TS_RETURN_IF_ERROR(arbiter.Validate());
  TS_RETURN_IF_ERROR(engine.Validate());
  TS_RETURN_IF_ERROR(daemon.Validate());
  if (ops_per_window == 0) {
    return InvalidArgument("MultiTenantConfig: ops_per_window must be > 0");
  }
  if (windows == 0) {
    return InvalidArgument("MultiTenantConfig: windows must be > 0");
  }
  if (threads < 1) {
    return InvalidArgument("MultiTenantConfig: threads must be >= 1");
  }
  if (shared_cache_ops > 0 && shared_cache_bytes < kMiB) {
    return InvalidArgument("MultiTenantConfig: shared_cache_bytes must be >= 1 MiB when the "
                           "shared cache is enabled");
  }
  return OkStatus();
}

MultiTenantDaemon::MultiTenantDaemon(MultiTenantConfig config) : config_(std::move(config)) {
  const Status valid = config_.Validate();
  TS_CHECK(valid.ok()) << valid.ToString();
  parent_obs_ = config_.obs != nullptr ? config_.obs : &Observability::Default();
  arbiter_ = std::make_unique<GlobalArbiter>(config_.arbiter, *parent_obs_);
  m_aggregate_tco_ = &parent_obs_->metrics.GetGauge("aggregate/tco");
  m_aggregate_savings_ = &parent_obs_->metrics.GetGauge("aggregate/tco_savings");
}

Status MultiTenantDaemon::AddTenant(
    TenantSpec spec,
    const std::function<StatusOr<std::unique_ptr<TenantApp>>(std::uint64_t seed)>& make_app) {
  if (ran_) {
    return FailedPrecondition("MultiTenantDaemon: AddTenant after Run");
  }
  if (spec.label.empty()) {
    return InvalidArgument("MultiTenantDaemon: tenant label must be non-empty");
  }
  for (const auto& existing : tenants_) {
    if (existing->spec.label == spec.label) {
      return InvalidArgument("MultiTenantDaemon: duplicate tenant label \"" + spec.label + "\"");
    }
  }
  auto tenant = std::make_unique<Tenant>();
  tenant->spec = std::move(spec);
  // SplitSeed decorrelates sibling tenants even for adjacent indices
  // (satellite of DESIGN.md §4f; rng.h).
  tenant->seed = SplitSeed(config_.base_seed, tenants_.size());
  tenant->demand.tenant = static_cast<int>(tenants_.size());
  auto app = make_app(tenant->seed);
  if (!app.ok()) {
    return app.status();
  }
  tenant->app = std::move(*app);
  tenant->obs.trace.SetEnabled(config_.trace);
  tenants_.push_back(std::move(tenant));
  return OkStatus();
}

Status MultiTenantDaemon::BuildTenant(Tenant& tenant) {
  SystemConfig system = config_.system;
  // Every tenant sees the full shared DRAM medium; the arbiter's grant cap is
  // the partition. NVMM stays template-sized and ungated (spill safety).
  system.dram_bytes = config_.arbiter.dram_pool_bytes;
  system.obs = &tenant.obs;
  if (system.fault.enabled()) {
    // Distinct per-tenant fault stream, decorrelated from the workload seed.
    system.fault.seed = SplitSeed(tenant.seed, 1);
  }
  TS_RETURN_IF_ERROR(system.Validate());
  tenant.system = std::make_unique<TieredSystem>(system);
  if (tenant.system->fault() != nullptr) {
    tenant.system->fault()->set_armed(false);  // setup is unperturbed (§4d)
  }

  tenant.app->Reserve(tenant.space);
  tenant.demand.priority = tenant.spec.priority;
  tenant.demand.footprint_bytes = tenant.space.total_bytes();

  EngineConfig engine = config_.engine;
  if (config_.threads > 1) {
    // Nested-pool rule (thread_pool.h): tenant shards already run on this
    // daemon's pool, so each engine's push pool must be inline-serial.
    engine.migrate_threads = 1;
  }
  tenant.engine = std::make_unique<TieringEngine>(tenant.space, tenant.system->tiers(), engine);
  tenant.policy = tenant.spec.alpha >= 0.0
                      ? std::unique_ptr<PlacementPolicy>(
                            std::make_unique<AnalyticalPolicy>(tenant.spec.alpha))
                      : std::make_unique<WaterfallPolicy>();
  DaemonConfig daemon = config_.daemon;
  // Each shard runs exactly ops_per_window ops through Observe (§4h event
  // API), so the op counter fires the boundary inside the shard's last op —
  // one window per shard, per-tenant fast path included.
  daemon.window_ops = config_.ops_per_window;
  tenant.daemon = std::make_unique<TsDaemon>(*tenant.engine, tenant.policy.get(), daemon);

  const std::string prefix = "tenant/" + tenant.spec.label + "/";
  MetricsRegistry& metrics = parent_obs_->metrics;
  tenant.m_tco_savings = &metrics.GetGauge(prefix + "tco_savings");
  tenant.m_slowdown = &metrics.GetGauge(prefix + "slowdown");
  tenant.m_grant_dram = &metrics.GetGauge(prefix + "grant_dram_bytes");
  tenant.m_grant_ct = &metrics.GetGauge(prefix + "grant_ct_bytes");
  tenant.m_window_faults = &metrics.GetGauge(prefix + "window_faults");
  return OkStatus();
}

void MultiTenantDaemon::ApplyGrant(Tenant& tenant, const TenantGrant& grant) {
  tenant.system->dram().set_grant_bytes(grant.dram_bytes);
  // Soft partition of the tenant's compressed pools: each tier may grow until
  // the tenant's total pool bytes reach the grant; headroom is re-tightened
  // at every window boundary as the tiers' occupancy shifts (DESIGN.md §4f).
  ZswapBackend& zswap = tenant.system->zswap();
  const std::size_t total = zswap.total_pool_bytes();
  for (int id = 0; id < zswap.tier_count(); ++id) {
    CompressedTier& tier = zswap.tier(id);
    const std::size_t others = total - tier.pool_bytes();
    tier.set_grant_bytes(grant.ct_bytes > others ? grant.ct_bytes - others : 0);
  }
}

void MultiTenantDaemon::SetupTenantShard(Tenant& tenant) {
  tenant.status = tenant.engine->PlaceInitial();
  if (!tenant.status.ok()) {
    return;
  }
  tenant.app->Populate(*tenant.engine);
}

Status MultiTenantDaemon::BuildSharedCache() {
  shared_cache_obs_ = std::make_unique<Observability>();
  shared_cache_medium_ = std::make_unique<Medium>(NvmmSpec(config_.shared_cache_bytes));
  shared_cache_ = std::make_unique<ZswapBackend>(*shared_cache_obs_);
  CompressedTierConfig tier;
  tier.label = "SC";
  tier.pool_manager = PoolManager::kZsmalloc;
  auto tier_id = shared_cache_->AddTier(tier, *shared_cache_medium_);
  if (!tier_id.ok()) {
    return tier_id.status();
  }
  shared_cache_tier_ = *tier_id;
  shared_cache_path_ = &shared_cache_->AccessPath();
  return OkStatus();
}

void MultiTenantDaemon::ChurnSharedCache(Tenant& tenant) {
  // Worker context: every write below lands in this tenant's slot; the access
  // path is MPMC-safe and parks all shared accounting in its shards until the
  // orchestrator's FlushAccounting (DESIGN.md §4g). Keys carry the tenant
  // index, so each shard churns a disjoint partition and its statuses and
  // latencies are pure per-tenant functions of the seeded contents.
  std::byte page[kPageSize];
  std::byte out[kPageSize];
  Nanos churn_ns = 0;
  const std::uint64_t key_base = static_cast<std::uint64_t>(tenant.demand.tenant) << 40;
  const std::uint64_t content_seed = SplitSeed(tenant.seed, 7);
  for (std::uint64_t op = 0; op < config_.shared_cache_ops; ++op) {
    const AccessKey key = key_base | op;
    FillPage(CorpusProfile::kNci, SplitSeed(content_seed, tenant.shared_cache_seq++), page);
    auto stored = shared_cache_path_->Store(shared_cache_tier_, key, page);
    TS_CHECK(stored.ok()) << stored.status().ToString();
    churn_ns += stored->latency;
    auto loaded = shared_cache_path_->Load(shared_cache_tier_, key, out);
    TS_CHECK(loaded.ok()) << loaded.status().ToString();
    churn_ns += loaded->latency;
    const Status dropped = shared_cache_path_->Invalidate(shared_cache_tier_, key);
    TS_CHECK(dropped.ok()) << dropped.ToString();
  }
  tenant.shared_cache_ns += churn_ns;
}

void MultiTenantDaemon::RunTenantShard(Tenant& tenant) {
  // Every op flows through the tenant daemon's Observe (§4h): sampling,
  // fast-path triggers, and the window boundary — which fires inside the
  // shard's last op (window_ops == ops_per_window, BuildTenant) — all on
  // slot-owned state. Shared-cache churn runs after the boundary; it touches
  // only the MPMC path's parked accounting and the tenant's own churn clock,
  // so the window record is independent of it either way.
  for (std::uint64_t op = 0; op < config_.ops_per_window; ++op) {
    const Nanos latency = tenant.app->Op(*tenant.engine);
    tenant.status = tenant.daemon->Observe(AccessEvent{.latency = latency});
    if (!tenant.status.ok()) {
      return;
    }
  }
  if (shared_cache_path_ != nullptr) {
    ChurnSharedCache(tenant);
  }
  TS_CHECK(!tenant.daemon->history().empty());
  const TsDaemon::WindowRecord& record = tenant.daemon->history().back();
  tenant.demand.marginal_gradient = record.marginal_gradient;
  tenant.demand.window_faults = SumFaults(record);
  tenant.demand.resident_dram_bytes = tenant.system->dram().used_bytes();
}

Status MultiTenantDaemon::Run() {
  if (ran_) {
    return FailedPrecondition("MultiTenantDaemon: Run called twice");
  }
  if (tenants_.empty()) {
    return FailedPrecondition("MultiTenantDaemon: no tenants added");
  }
  ran_ = true;
  const std::size_t n = tenants_.size();

  // Assemblies build sequentially in ascending tenant order: construction
  // registers metrics and traces, which must not race.
  if (config_.shared_cache_ops > 0) {
    TS_RETURN_IF_ERROR(BuildSharedCache());
  }
  for (auto& tenant : tenants_) {
    TS_RETURN_IF_ERROR(BuildTenant(*tenant));
  }

  // Initial arbitration from reserved footprints, applied before initial
  // placement so an over-subscribed tenant spills from day one.
  std::vector<TenantDemand> demands;
  demands.reserve(n);
  for (const auto& tenant : tenants_) {
    demands.push_back(tenant->demand);
  }
  auto initial = arbiter_->Divide(demands);
  if (!initial.ok()) {
    return initial.status();
  }
  grants_ = std::move(*initial);
  for (std::size_t i = 0; i < n; ++i) {
    ApplyGrant(*tenants_[i], grants_[i]);
  }

  ThreadPool pool(config_.threads);
  pool.ParallelFor(n, [this](std::size_t i) { SetupTenantShard(*tenants_[i]); });
  for (const auto& tenant : tenants_) {
    TS_RETURN_IF_ERROR(tenant->status);
  }

  // Measured phase: faults armed at the same virtual instant for every run.
  for (auto& tenant : tenants_) {
    if (tenant->system->fault() != nullptr) {
      tenant->system->fault()->set_armed(true);
    }
  }

  history_.reserve(config_.windows);
  for (std::uint64_t window = 0; window < config_.windows; ++window) {
    pool.ParallelFor(n, [this](std::size_t i) { RunTenantShard(*tenants_[i]); });

    // Sequential commit in ascending tenant order (thread_pool.h invariant):
    // statuses, demands, arbitration, grants, virtual-time charges, metrics.
    WindowRecord record;
    record.window = window;
    std::vector<TenantDemand> window_demands;
    window_demands.reserve(n);
    double tco = 0.0;
    double dram_only_tco = 0.0;
    for (const auto& tenant : tenants_) {
      TS_RETURN_IF_ERROR(tenant->status);
      window_demands.push_back(tenant->demand);
      tco += tenant->engine->CurrentTco();
      dram_only_tco += tenant->engine->DramOnlyTco();
      record.max_slowdown = std::max(record.max_slowdown, tenant->engine->Slowdown());
    }
    auto grants = arbiter_->Divide(window_demands);
    if (!grants.ok()) {
      return grants.status();
    }
    grants_ = std::move(*grants);
    if (shared_cache_path_ != nullptr) {
      // Commit point: all shard-parked shared-cache deltas roll up into the
      // tier gauges here, on the orchestrator thread (DESIGN.md §4g).
      shared_cache_path_->FlushAccounting();
    }
    for (std::size_t i = 0; i < n; ++i) {
      Tenant& tenant = *tenants_[i];
      ApplyGrant(tenant, grants_[i]);
      // Arbitration is modeled work every tenant waits on (§8.4-style cost).
      tenant.engine->Compute(config_.arbiter.decision_cost_ns);
      // Shared-cache churn latency, parked in the tenant slot by the worker,
      // charges to virtual time here in ascending tenant order.
      tenant.engine->Compute(tenant.shared_cache_ns);
      tenant.shared_cache_ns = 0;
      tenant.m_tco_savings->Set(tenant.engine->TcoSavings());
      tenant.m_slowdown->Set(tenant.engine->Slowdown());
      tenant.m_grant_dram->Set(static_cast<double>(grants_[i].dram_bytes));
      tenant.m_grant_ct->Set(static_cast<double>(grants_[i].ct_bytes));
      tenant.m_window_faults->Set(static_cast<double>(tenant.demand.window_faults));
    }
    record.grants = grants_;
    record.demands = std::move(window_demands);
    record.aggregate_tco = tco;
    record.aggregate_tco_savings = dram_only_tco == 0.0 ? 0.0 : 1.0 - tco / dram_only_tco;
    record.rebalanced_bytes = arbiter_->last_rebalanced_bytes();
    m_aggregate_tco_->Set(record.aggregate_tco);
    m_aggregate_savings_->Set(record.aggregate_tco_savings);
    history_.push_back(std::move(record));
  }
  return OkStatus();
}

std::vector<MultiTenantDaemon::TenantResult> MultiTenantDaemon::TenantResults() const {
  std::vector<TenantResult> results;
  results.reserve(tenants_.size());
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const Tenant& tenant = *tenants_[i];
    TenantResult result;
    result.label = tenant.spec.label;
    if (tenant.engine != nullptr) {
      result.slowdown = tenant.engine->Slowdown();
      result.tco_savings = tenant.engine->TcoSavings();
      result.faults = tenant.engine->total_faults();
      result.migrated_pages = tenant.engine->total_migrated_pages();
    }
    if (i < grants_.size()) {
      result.final_dram_grant = grants_[i].dram_bytes;
    }
    results.push_back(std::move(result));
  }
  return results;
}

MultiTenantDaemon::Totals MultiTenantDaemon::ComputeTotals() const {
  Totals totals;
  if (tenants_.empty() || tenants_.front()->engine == nullptr) {
    return totals;
  }
  double dram_only_tco = 0.0;
  double slowdown_sum = 0.0;
  for (const auto& tenant : tenants_) {
    totals.aggregate_tco += tenant->engine->CurrentTco();
    dram_only_tco += tenant->engine->DramOnlyTco();
    const double slowdown = tenant->engine->Slowdown();
    slowdown_sum += slowdown;
    totals.max_slowdown = std::max(totals.max_slowdown, slowdown);
    totals.total_faults += tenant->engine->total_faults();
  }
  totals.aggregate_tco_savings =
      dram_only_tco == 0.0 ? 0.0 : 1.0 - totals.aggregate_tco / dram_only_tco;
  totals.mean_slowdown = slowdown_sum / static_cast<double>(tenants_.size());
  return totals;
}

std::string MultiTenantDaemon::MergedMetricsJsonl() const {
  std::vector<LabeledSnapshot> cells;
  cells.reserve(tenants_.size());
  for (const auto& tenant : tenants_) {
    cells.push_back({tenant->spec.label, tenant->obs.metrics.Snapshot()});
  }
  RegistrySnapshot merged = MergeSnapshots(cells, "tenant");
  if (shared_cache_obs_ != nullptr) {
    // Shared side-cache metrics join under "shared/cache/...".
    RegistrySnapshot shared =
        MergeSnapshots({{"cache", shared_cache_obs_->metrics.Snapshot()}}, "shared");
    merged.metrics.insert(merged.metrics.end(),
                          std::make_move_iterator(shared.metrics.begin()),
                          std::make_move_iterator(shared.metrics.end()));
  }
  // Parent-scope metrics (arbiter/, aggregate/, tenant/<label>/ gauges) join
  // unprefixed; names are disjoint from the merged subtrees by construction.
  RegistrySnapshot parent = parent_obs_->metrics.Snapshot();
  merged.metrics.insert(merged.metrics.end(),
                        std::make_move_iterator(parent.metrics.begin()),
                        std::make_move_iterator(parent.metrics.end()));
  std::sort(merged.metrics.begin(), merged.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) { return a.name < b.name; });
  return SnapshotToJsonl(merged, WallMetrics::kExclude);
}

std::string MultiTenantDaemon::MergedTraceJson() const {
  // Track 0 stays free for the parent; tenants get 1-based tracks in tenant
  // order, mirroring the bench grid's per-cell merge (experiment_grid.cc).
  std::vector<TraceRecorder::Event> events;
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    const Tenant& tenant = *tenants_[i];
    const std::string prefix = "tenant/" + tenant.spec.label + "/";
    for (TraceRecorder::Event event : tenant.obs.trace.events()) {
      event.track = static_cast<std::int32_t>(i) + 1;
      event.name = prefix + event.name;
      events.push_back(std::move(event));
    }
  }
  return TraceEventsToChromeJson(events);
}

}  // namespace tierscape
