#include "src/multitenant/arbiter.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/logging.h"

namespace tierscape {
namespace {

// Splits `pool_bytes` across tenants proportionally to `shares` (which sum to
// 1), at frame granularity, with largest-remainder rounding so the grants sum
// exactly to the pool. Ties go to the lower tenant index (deterministic).
std::vector<std::size_t> SplitPool(std::size_t pool_bytes, const std::vector<double>& shares) {
  const std::size_t n = shares.size();
  const std::uint64_t total_frames = pool_bytes / kPageSize;
  std::vector<std::size_t> frames(n, 0);
  std::vector<double> remainder(n, 0.0);
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double target = shares[i] * static_cast<double>(total_frames);
    frames[i] = static_cast<std::size_t>(target);
    remainder[i] = target - static_cast<double>(frames[i]);
    assigned += frames[i];
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return remainder[a] > remainder[b]; });
  for (std::size_t k = 0; assigned < total_frames; ++k, ++assigned) {
    ++frames[order[k % n]];
  }
  std::vector<std::size_t> bytes(n);
  for (std::size_t i = 0; i < n; ++i) {
    bytes[i] = frames[i] * kPageSize;
  }
  return bytes;
}

// Raw (unnormalized) weight of one tenant under `policy`. A weight of zero is
// legal — the anti-starvation floor still guarantees a minimum share.
double RawWeight(ArbiterPolicy policy, const TenantDemand& d) {
  switch (policy) {
    case ArbiterPolicy::kStaticShares:
      return 1.0;
    case ArbiterPolicy::kFairShare:
      return static_cast<double>(d.footprint_bytes);
    case ArbiterPolicy::kPriorityWeighted:
      return d.priority;
    case ArbiterPolicy::kUtility:
      return d.marginal_gradient;
  }
  return 1.0;
}

}  // namespace

std::string_view ArbiterPolicyName(ArbiterPolicy policy) {
  switch (policy) {
    case ArbiterPolicy::kStaticShares:
      return "static";
    case ArbiterPolicy::kFairShare:
      return "fair";
    case ArbiterPolicy::kPriorityWeighted:
      return "priority";
    case ArbiterPolicy::kUtility:
      return "utility";
  }
  return "unknown";
}

Status ArbiterConfig::Validate() const {
  if (dram_pool_bytes < kPageSize) {
    return InvalidArgument("ArbiterConfig: dram_pool_bytes must be at least one frame");
  }
  if (fair_share_floor < 0.0 || fair_share_floor > 1.0) {
    return InvalidArgument("ArbiterConfig: fair_share_floor must be in [0, 1], got " +
                           std::to_string(fair_share_floor));
  }
  if (share_smoothing <= 0.0 || share_smoothing > 1.0) {
    return InvalidArgument("ArbiterConfig: share_smoothing must be in (0, 1], got " +
                           std::to_string(share_smoothing));
  }
  return OkStatus();
}

GlobalArbiter::GlobalArbiter(ArbiterConfig config, Observability& obs)
    : config_(std::move(config)) {
  const Status valid = config_.Validate();
  TS_CHECK(valid.ok()) << valid.ToString();
  m_decisions_ = &obs.metrics.GetCounter("arbiter/decisions");
  m_rebalanced_bytes_ = &obs.metrics.GetCounter("arbiter/rebalanced_bytes");
  m_last_rebalanced_ = &obs.metrics.GetGauge("arbiter/last_rebalanced_bytes");
}

StatusOr<std::vector<TenantGrant>> GlobalArbiter::Divide(
    const std::vector<TenantDemand>& demands) {
  if (demands.empty()) {
    return InvalidArgument("GlobalArbiter::Divide: no tenants");
  }
  const std::size_t n = demands.size();

  // Normalized weights. When every raw weight is ~0 (e.g. utility arbitration
  // before any solve, or all budgets slack) fall back to fault pressure, then
  // to an equal split — never divide by zero, never starve.
  std::vector<double> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    weights[i] = std::max(0.0, RawWeight(config_.policy, demands[i]));
  }
  double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (config_.policy == ArbiterPolicy::kUtility && sum <= 1e-12) {
    for (std::size_t i = 0; i < n; ++i) {
      weights[i] = static_cast<double>(demands[i].window_faults);
    }
    sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  }
  if (sum <= 1e-12) {
    std::fill(weights.begin(), weights.end(), 1.0);
    sum = static_cast<double>(n);
  }

  // share_i = floor + (1 - n*floor) * w_i / sum: every tenant keeps at least
  // `fair_share_floor` of an equal split, the rest follows the weights.
  const double floor_share = config_.fair_share_floor / static_cast<double>(n);
  std::vector<double> shares(n);
  for (std::size_t i = 0; i < n; ++i) {
    shares[i] =
        floor_share + (1.0 - static_cast<double>(n) * floor_share) * weights[i] / sum;
  }

  // Damp window-to-window oscillation: both vectors sum to 1, so the blend
  // does too and SplitPool still hands out the whole pool.
  if (config_.share_smoothing < 1.0 && last_shares_.size() == n) {
    for (std::size_t i = 0; i < n; ++i) {
      shares[i] = config_.share_smoothing * shares[i] +
                  (1.0 - config_.share_smoothing) * last_shares_[i];
    }
  }
  last_shares_ = shares;

  const std::vector<std::size_t> dram = SplitPool(config_.dram_pool_bytes, shares);
  const std::vector<std::size_t> ct = SplitPool(config_.ct_pool_bytes, shares);
  std::vector<TenantGrant> grants(n);
  for (std::size_t i = 0; i < n; ++i) {
    grants[i].dram_bytes = dram[i];
    grants[i].ct_bytes = ct[i];
  }

  std::size_t rebalanced = 0;
  if (last_grants_.size() == n) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto delta = [](std::size_t a, std::size_t b) { return a > b ? a - b : b - a; };
      rebalanced += delta(grants[i].dram_bytes, last_grants_[i].dram_bytes) +
                    delta(grants[i].ct_bytes, last_grants_[i].ct_bytes);
    }
  }
  last_rebalanced_bytes_ = rebalanced;
  last_grants_ = grants;
  m_decisions_->Add();
  m_rebalanced_bytes_->Add(rebalanced);
  m_last_rebalanced_->Set(static_cast<double>(rebalanced));
  return grants;
}

}  // namespace tierscape
