// Log-linear latency histogram (HdrHistogram-style) used for the tail-latency
// experiments (Figure 11) and for TS-Daemon diagnostics.
//
// Values are bucketed with bounded relative error (~1/32 by default), so p99.9
// over millions of samples costs a few KiB of memory and O(1) per record.
#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace tierscape {

class Histogram {
 public:
  // sub_bucket_bits controls relative precision: each power-of-two range is
  // split into 2^sub_bucket_bits linear buckets.
  explicit Histogram(int sub_bucket_bits = 5);

  void Record(std::uint64_t value);
  void RecordN(std::uint64_t value, std::uint64_t count);

  // Merges another histogram with the same precision into this one.
  void Merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double Mean() const;

  // Returns the smallest bucket midpoint v such that at least `quantile`
  // of recorded values are <= v. quantile in [0, 1].
  std::uint64_t Percentile(double quantile) const;

  void Reset();

 private:
  std::size_t BucketIndex(std::uint64_t value) const;
  std::uint64_t BucketMidpoint(std::size_t index) const;

  int sub_bucket_bits_;
  std::uint64_t sub_bucket_count_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
};

// Simple helper for exact percentiles over small sample sets.
double ExactPercentile(std::vector<double> values, double quantile);

}  // namespace tierscape

#endif  // SRC_COMMON_HISTOGRAM_H_
