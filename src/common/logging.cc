#include "src/common/logging.h"

#include <atomic>

namespace tierscape {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), enabled_(level >= GetLogLevel() || level == LogLevel::kFatal) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    // Compose the whole line (newline included) first and emit it with one
    // fwrite: concurrent loggers then never interleave partial lines, which
    // fprintf's separate format-and-newline path does not guarantee.
    std::string line = stream_.str();
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace tierscape
