#include "src/common/status.h"

namespace tierscape {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfMemory:
      return "OUT_OF_MEMORY";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kRejected:
      return "REJECTED";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace tierscape
