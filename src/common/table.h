// Fixed-width console table printer used by the benchmark harnesses to emit
// the rows/series corresponding to each paper table and figure.
#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

namespace tierscape {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
    widths_.reserve(headers_.size());
    for (const auto& h : headers_) {
      widths_.push_back(h.size());
    }
  }

  void AddRow(std::vector<std::string> cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      if (cells[i].size() > widths_[i]) {
        widths_[i] = cells[i].size();
      }
    }
    rows_.push_back(std::move(cells));
  }

  void Print() const { std::fputs(ToString().c_str(), stdout); }

  // The exact bytes Print() writes — lets harnesses and tests compare table
  // output across configurations without capturing stdout.
  std::string ToString() const {
    std::string out;
    AppendRow(out, headers_);
    for (std::size_t i = 0; i < widths_.size(); ++i) {
      out.append(widths_[i] + 2, '-');
      if (i + 1 < widths_.size()) {
        out += '+';
      }
    }
    out += '\n';
    for (const auto& row : rows_) {
      AppendRow(out, row);
    }
    return out;
  }

  static std::string Fmt(double v, int decimals = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
  }

  static std::string Pct(double fraction, int decimals = 2) {
    return Fmt(fraction * 100.0, decimals) + "%";
  }

 private:
  void AppendRow(std::string& out, const std::vector<std::string>& cells) const {
    for (std::size_t i = 0; i < widths_.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      out += ' ';
      out += cell;
      out.append(widths_[i] - cell.size() + 1, ' ');
      if (i + 1 < widths_.size()) {
        out += '|';
      }
    }
    out += '\n';
  }

  std::vector<std::string> headers_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tierscape

#endif  // SRC_COMMON_TABLE_H_
