// Fixed-width console table printer used by the benchmark harnesses to emit
// the rows/series corresponding to each paper table and figure.
#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

namespace tierscape {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {
    widths_.reserve(headers_.size());
    for (const auto& h : headers_) {
      widths_.push_back(h.size());
    }
  }

  void AddRow(std::vector<std::string> cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      if (cells[i].size() > widths_[i]) {
        widths_[i] = cells[i].size();
      }
    }
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    PrintRow(headers_);
    std::string rule;
    for (std::size_t i = 0; i < widths_.size(); ++i) {
      rule.append(widths_[i] + 2, '-');
      if (i + 1 < widths_.size()) {
        rule += '+';
      }
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) {
      PrintRow(row);
    }
  }

  static std::string Fmt(double v, int decimals = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
  }

  static std::string Pct(double fraction, int decimals = 2) {
    return Fmt(fraction * 100.0, decimals) + "%";
  }

 private:
  void PrintRow(const std::vector<std::string>& cells) const {
    std::string line;
    for (std::size_t i = 0; i < widths_.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      line += ' ';
      line += cell;
      line.append(widths_[i] - cell.size() + 1, ' ');
      if (i + 1 < widths_.size()) {
        line += '|';
      }
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tierscape

#endif  // SRC_COMMON_TABLE_H_
