// Deterministic random number generation and the access-skew distributions
// used by the workload generators (YCSB scrambled-zipfian, memtier gaussian).
//
// Everything is seeded explicitly so that every experiment in the repository
// is reproducible bit-for-bit.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace tierscape {

// SplitMix64: used for seeding and for stateless per-page content hashing.
constexpr std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Derives the `index`-th child seed of `base`: the canonical way to split one
// experiment seed into independent streams (per-tenant seeds, per-site fault
// streams, a workload's secondary generators). Two SplitMix64 rounds keep
// children decorrelated even for adjacent (base, index) pairs — unlike the
// `base + index` arithmetic this replaces, where child i of base b collides
// with child i-1 of base b+1. A child is never equal to common sentinel
// values' trivial transforms; callers that reserve 0 as "disabled" should
// still check, since any 64-bit value is reachable in principle.
constexpr std::uint64_t SplitSeed(std::uint64_t base, std::uint64_t index) {
  return SplitMix64(base ^ SplitMix64(index + 0x9e3779b97f4a7c15ULL));
}

// xoshiro256++ — fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t s = seed;
    for (auto& word : state_) {
      s = SplitMix64(s);
      word = s;
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) { return Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Standard normal via Box-Muller.
  double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-12);
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

// Zipfian generator over [0, item_count), YCSB-style (Gray et al.), with the
// standard scrambling option so that hot items are scattered across the
// keyspace rather than clustered at the front.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t item_count, double theta, std::uint64_t seed,
                   bool scrambled = true);

  std::uint64_t Next();

  std::uint64_t item_count() const { return item_count_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(std::uint64_t n, double theta);

  std::uint64_t item_count_;
  double theta_;
  bool scrambled_;
  double zetan_;
  double alpha_;
  double eta_;
  double half_pow_theta_;
  Rng rng_;
};

// Gaussian access generator over [0, item_count) as produced by
// memtier_benchmark's gaussian key pattern: indices are drawn from a normal
// centred mid-keyspace with a configurable standard deviation.
class GaussianGenerator {
 public:
  GaussianGenerator(std::uint64_t item_count, double stddev_fraction, std::uint64_t seed)
      : item_count_(item_count),
        mean_(static_cast<double>(item_count) / 2.0),
        stddev_(stddev_fraction * static_cast<double>(item_count)),
        rng_(seed) {}

  std::uint64_t Next() {
    for (;;) {
      const double v = mean_ + stddev_ * rng_.NextGaussian();
      if (v >= 0.0 && v < static_cast<double>(item_count_)) {
        return static_cast<std::uint64_t>(v);
      }
    }
  }

 private:
  std::uint64_t item_count_;
  double mean_;
  double stddev_;
  Rng rng_;
};

}  // namespace tierscape

#endif  // SRC_COMMON_RNG_H_
