// Fixed-size worker pool for the daemon's push threads (PT2, §6/§7.2).
//
// The only entry point is a blocking parallel-for over an index range. Tasks
// must be pure with respect to shared state and write only to slots owned by
// their index, so the result of a ParallelFor is identical for every pool
// size — including 1, where the loop runs inline on the caller with no
// threads involved. This is what lets the migration pipeline use real
// parallelism for wall-clock speed while keeping virtual-time results
// byte-identical across thread counts (the determinism invariant guarded by
// DriverTest.DeterministicAcrossThreadsAndCache).
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tierscape {

class ThreadPool {
 public:
  // `threads` is the total worker count including the calling thread:
  // 1 means fully serial (no threads are spawned), N > 1 spawns N - 1
  // workers that participate alongside the caller.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(0) .. fn(n - 1), returning only when every index has completed.
  // Indices are claimed dynamically, so execution order across workers is
  // arbitrary — callers must not let it influence results. Not reentrant:
  // only the owning (orchestrator) thread may call this, and fn must not
  // call back into the pool.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  // One batch of work; workers hold a shared_ptr so a straggler draining an
  // old batch can never claim indices from a newer one.
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t size = 0;
    std::atomic<std::size_t> next{0};
    std::size_t completed = 0;  // guarded by ThreadPool::mu_
  };

  void WorkerLoop();
  void RunShard(Batch& batch);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Batch> batch_;  // guarded by mu_; null when idle
  std::uint64_t generation_ = 0;  // guarded by mu_
  bool shutdown_ = false;         // guarded by mu_
  std::vector<std::thread> workers_;
};

}  // namespace tierscape

#endif  // SRC_COMMON_THREAD_POOL_H_
