#include "src/common/rng.h"

#include <cmath>

namespace tierscape {

ZipfianGenerator::ZipfianGenerator(std::uint64_t item_count, double theta, std::uint64_t seed,
                                   bool scrambled)
    : item_count_(item_count),
      theta_(theta),
      scrambled_(scrambled),
      zetan_(Zeta(item_count, theta)),
      alpha_(1.0 / (1.0 - theta)),
      rng_(seed) {
  const double zeta2 = Zeta(2, theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(item_count_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  half_pow_theta_ = 1.0 + std::pow(0.5, theta_);
}

double ZipfianGenerator::Zeta(std::uint64_t n, double theta) {
  // Direct summation; item counts in this repository are <= a few million so
  // this stays fast and is only computed once per generator.
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

std::uint64_t ZipfianGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  std::uint64_t rank = 0;
  if (uz < 1.0) {
    rank = 0;
  } else if (uz < half_pow_theta_) {
    rank = 1;
  } else {
    rank = static_cast<std::uint64_t>(static_cast<double>(item_count_) *
                                      std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank >= item_count_) {
      rank = item_count_ - 1;
    }
  }
  if (!scrambled_) {
    return rank;
  }
  return SplitMix64(rank) % item_count_;
}

}  // namespace tierscape
