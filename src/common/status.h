// Lightweight error-propagation types (Status / StatusOr) used instead of
// exceptions throughout the library, in keeping with OS-systems C++ practice.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

// Discarding a Status silently swallows an error; the compiler warns on it
// and tslint's status-discard rule (DESIGN.md §4c) flags call sites whose
// result is neither assigned, returned, checked, nor explicitly (void)-cast.
#define TS_NODISCARD [[nodiscard]]

namespace tierscape {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfMemory,       // allocation failed: medium or pool exhausted
  kNotFound,          // handle / entry does not exist
  kFailedPrecondition,
  kResourceExhausted,  // capacity limits other than raw memory
  kRejected,           // e.g. zswap refusing an incompressible page
  kCorruption,         // round-trip integrity failure
  kUnavailable,        // transient failure; retrying may succeed
  kDeadlineExceeded,   // operation blew its (virtual-time) budget
  kInternal,
};

std::string_view StatusCodeName(StatusCode code);

class TS_NODISCARD Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    std::string out(StatusCodeName(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status OutOfMemory(std::string msg) {
  return Status(StatusCode::kOutOfMemory, std::move(msg));
}
inline Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status Rejected(std::string msg) { return Status(StatusCode::kRejected, std::move(msg)); }
inline Status Corruption(std::string msg) {
  return Status(StatusCode::kCorruption, std::move(msg));
}
inline Status Unavailable(std::string msg) {
  return Status(StatusCode::kUnavailable, std::move(msg));
}
inline Status DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}
inline Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }

// Minimal StatusOr: either a value or a non-OK status.
template <typename T>
class TS_NODISCARD StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "StatusOr constructed from OK status without a value");
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define TS_RETURN_IF_ERROR(expr)          \
  do {                                    \
    ::tierscape::Status _st = (expr);     \
    if (!_st.ok()) {                      \
      return _st;                         \
    }                                     \
  } while (0)

#define TS_ASSIGN_OR_RETURN(lhs, expr)    \
  auto _so_##__LINE__ = (expr);           \
  if (!_so_##__LINE__.ok()) {             \
    return _so_##__LINE__.status();       \
  }                                       \
  lhs = std::move(_so_##__LINE__).value()

}  // namespace tierscape

#endif  // SRC_COMMON_STATUS_H_
