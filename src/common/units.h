// Size and time unit helpers shared across all TierScape modules.
#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cstddef>
#include <cstdint>

namespace tierscape {

inline constexpr std::size_t kKiB = 1024;
inline constexpr std::size_t kMiB = 1024 * kKiB;
inline constexpr std::size_t kGiB = 1024 * kMiB;

// The simulated system uses 4 KiB base pages and 2 MiB management regions,
// matching the granularity TS-Daemon operates at in the paper (§7.2).
inline constexpr std::size_t kPageSize = 4 * kKiB;
inline constexpr std::size_t kRegionSize = 2 * kMiB;
inline constexpr std::size_t kPagesPerRegion = kRegionSize / kPageSize;

// Virtual time is tracked in nanoseconds.
using Nanos = std::uint64_t;

inline constexpr Nanos kMicro = 1000;
inline constexpr Nanos kMilli = 1000 * kMicro;
inline constexpr Nanos kSecond = 1000 * kMilli;

constexpr double NanosToMillis(Nanos ns) { return static_cast<double>(ns) / 1e6; }
constexpr double NanosToSeconds(Nanos ns) { return static_cast<double>(ns) / 1e9; }

constexpr double BytesToMiB(std::size_t bytes) { return static_cast<double>(bytes) / kMiB; }
constexpr double BytesToGiB(std::size_t bytes) { return static_cast<double>(bytes) / kGiB; }

}  // namespace tierscape

#endif  // SRC_COMMON_UNITS_H_
