#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/common/logging.h"

namespace tierscape {

Histogram::Histogram(int sub_bucket_bits)
    : sub_bucket_bits_(sub_bucket_bits), sub_bucket_count_(1ULL << sub_bucket_bits) {
  TS_CHECK_GE(sub_bucket_bits, 1);
  TS_CHECK_LE(sub_bucket_bits, 12);
  // 64 power-of-two ranges, each with sub_bucket_count_ linear buckets, covers
  // the full uint64 domain.
  buckets_.assign(64 * sub_bucket_count_, 0);
}

std::size_t Histogram::BucketIndex(std::uint64_t value) const {
  if (value < sub_bucket_count_) {
    return static_cast<std::size_t>(value);
  }
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - sub_bucket_bits_;
  const std::uint64_t sub = (value >> shift) - sub_bucket_count_;  // in [0, sub_bucket_count_)
  const std::size_t range = static_cast<std::size_t>(msb - sub_bucket_bits_ + 1);
  return range * sub_bucket_count_ + static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::BucketMidpoint(std::size_t index) const {
  const std::size_t range = index / sub_bucket_count_;
  const std::uint64_t sub = index % sub_bucket_count_;
  if (range == 0) {
    return sub;
  }
  const int shift = static_cast<int>(range) - 1;
  const std::uint64_t lo = (sub_bucket_count_ + sub) << shift;
  const std::uint64_t width = 1ULL << shift;
  return lo + width / 2;
}

void Histogram::Record(std::uint64_t value) { RecordN(value, 1); }

void Histogram::RecordN(std::uint64_t value, std::uint64_t n) {
  if (n == 0) {
    return;
  }
  buckets_[BucketIndex(value)] += n;
  count_ += n;
  sum_ += value * n;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  TS_CHECK_EQ(sub_bucket_bits_, other.sub_bucket_bits_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::Mean() const {
  if (count_ == 0) {
    return 0.0;
  }
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::Percentile(double quantile) const {
  if (count_ == 0) {
    return 0;
  }
  quantile = std::clamp(quantile, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(quantile * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::min(BucketMidpoint(i), max_);
    }
  }
  return max_;
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

double ExactPercentile(std::vector<double> values, double quantile) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  quantile = std::clamp(quantile, 0.0, 1.0);
  const double pos = quantile * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace tierscape
