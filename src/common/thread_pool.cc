#include "src/common/thread_pool.h"

#include <algorithm>

namespace tierscape {

ThreadPool::ThreadPool(int threads) {
  const int workers = std::max(1, threads) - 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (workers_.empty() || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->size = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = batch;
    ++generation_;
  }
  work_cv_.notify_all();
  RunShard(*batch);  // the caller is one of the workers
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return batch->completed >= batch->size; });
  batch_.reset();
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen = 0;
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || (generation_ != seen && batch_ != nullptr); });
      if (shutdown_) {
        return;
      }
      seen = generation_;
      batch = batch_;
    }
    RunShard(*batch);
  }
}

void ThreadPool::RunShard(Batch& batch) {
  std::size_t done = 0;
  for (std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed); i < batch.size;
       i = batch.next.fetch_add(1, std::memory_order_relaxed)) {
    (*batch.fn)(i);
    ++done;
  }
  if (done == 0) {
    return;
  }
  bool finished = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch.completed += done;
    finished = batch.completed >= batch.size;
  }
  if (finished) {
    done_cv_.notify_all();
  }
}

}  // namespace tierscape
