// Minimal leveled logging. Kept deliberately small: benchmarks and the
// TS-Daemon print structured rows on stdout; logging is for diagnostics only.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tierscape {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Global minimum level; messages below it are discarded. Default: kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

#define TS_LOG(level) \
  ::tierscape::LogMessage(::tierscape::LogLevel::k##level, __FILE__, __LINE__)

#define TS_CHECK(cond)                                                  \
  if (!(cond))                                                          \
  ::tierscape::LogMessage(::tierscape::LogLevel::kFatal, __FILE__, __LINE__) \
      << "Check failed: " #cond " "

#define TS_CHECK_EQ(a, b) TS_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define TS_CHECK_LE(a, b) TS_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define TS_CHECK_LT(a, b) TS_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define TS_CHECK_GE(a, b) TS_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define TS_CHECK_GT(a, b) TS_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "

}  // namespace tierscape

#endif  // SRC_COMMON_LOGGING_H_
