#include "src/solver/mckp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "src/common/logging.h"
#include "src/fault/fault_injector.h"

namespace tierscape {

// Pruned per-group choice-index sets. Each rule is applied only where it is
// provably cost-neutral:
//
//  * dominant[g] — choices surviving dominance pruning: k is dropped iff some
//    sibling i has weight_i <= weight_k and either cost_i < cost_k, or
//    cost_i == cost_k with i < k ("keep-first"). Every exhaustive
//    first-index-tie-break scan (each DP column min, the greedy seed and
//    improvement passes) picks the same choice over dominant[g] as over the
//    full group: the dropped k is feasible only when i is, never strictly
//    better, and loses every tie to i.
//  * hull[g] — choices on the group's lower convex hull in (weight, cost),
//    colinear points and exact duplicates included. The greedy efficiency
//    walk only ever moves to hull choices: from a hull point, a choice
//    strictly above the hull has strictly worse efficiency than the adjacent
//    hull vertex, so restricting next_move to hull[g] reproduces the
//    unpruned walk move-for-move (up to floating-point-degenerate ties).
//    hull[g] is *not* a subset of dominant[g]: an equal-cost heavier choice
//    on a horizontal hull segment is dominated yet a legal walk target.
//
// Both lists are in ascending index order so first-index tie-breaks survive.
struct MckpPruning {
  std::vector<std::vector<int>> dominant;
  std::vector<std::vector<int>> hull;
};

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Status CheckProblem(const MckpProblem& problem) {
  if (problem.groups.empty()) {
    return InvalidArgument("mckp: no groups");
  }
  if (!(problem.capacity >= 0.0)) {
    return InvalidArgument("mckp: negative capacity");
  }
  double min_weight_total = 0.0;
  for (const auto& group : problem.groups) {
    if (group.empty()) {
      return InvalidArgument("mckp: empty group");
    }
    double min_weight = kInf;
    for (const auto& choice : group) {
      if (choice.weight < 0.0 || !std::isfinite(choice.cost)) {
        return InvalidArgument("mckp: bad choice");
      }
      min_weight = std::min(min_weight, choice.weight);
    }
    min_weight_total += min_weight;
  }
  if (min_weight_total > problem.capacity * (1.0 + 1e-9) + 1e-12) {
    return ResourceExhausted("mckp: minimum-weight assignment exceeds capacity");
  }
  return OkStatus();
}

// O(m log m) per group. With `enabled` false both lists are the identity, so
// the solve paths stay branch-free over a single representation.
MckpPruning BuildPruning(const MckpProblem& problem, bool enabled,
                         MckpSolver::SolveStats& stats) {
  MckpPruning pruning;
  pruning.dominant.resize(problem.groups.size());
  pruning.hull.resize(problem.groups.size());
  for (std::size_t g = 0; g < problem.groups.size(); ++g) {
    const auto& group = problem.groups[g];
    stats.choices_total += group.size();
    auto& dominant = pruning.dominant[g];
    auto& hull = pruning.hull[g];
    if (!enabled || group.size() <= 2) {
      dominant.resize(group.size());
      std::iota(dominant.begin(), dominant.end(), 0);
      hull = dominant;
      continue;
    }
    std::vector<int> order(group.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      if (group[a].weight != group[b].weight) {
        return group[a].weight < group[b].weight;
      }
      if (group[a].cost != group[b].cost) {
        return group[a].cost < group[b].cost;
      }
      return a < b;
    });

    // Dominance sweep in ascending weight: everything already seen is
    // lighter-or-equal, so k survives iff nothing seen is strictly cheaper or
    // equally cheap with a smaller index.
    double best_cost = kInf;
    int best_index = -1;
    for (const int k : order) {
      const double cost = group[k].cost;
      if (cost < best_cost || (cost == best_cost && k < best_index)) {
        best_cost = cost;
        best_index = k;
      }
      // After the update best_cost <= cost; k survives iff it is itself the
      // (cost, index)-lexicographic minimum of everything seen so far.
      if (cost == best_cost && best_index >= k) {
        dominant.push_back(k);
      }
    }
    std::sort(dominant.begin(), dominant.end());

    // Lower convex hull over the distinct-weight minima (the first entry of
    // each weight run in `order` is that weight's cheapest choice). Pops use
    // a strict test so colinear points stay on the hull — they tie the
    // adjacent vertex's efficiency and the unpruned walk may pick them.
    struct Point {
      double weight;
      double cost;
    };
    std::vector<Point> chain;
    for (const int k : order) {
      const Point p{group[k].weight, group[k].cost};
      if (!chain.empty() && chain.back().weight == p.weight) {
        continue;  // heavier-cost duplicate weight: strictly above the hull
      }
      while (chain.size() >= 2) {
        const Point& a = chain[chain.size() - 2];
        const Point& b = chain.back();
        // b is strictly above segment a->p iff slope(a,b) > slope(b,p).
        if ((b.cost - a.cost) * (p.weight - b.weight) >
            (p.cost - b.cost) * (b.weight - a.weight)) {
          chain.pop_back();
        } else {
          break;
        }
      }
      chain.push_back(p);
    }
    std::size_t at = 0;
    for (const int k : order) {
      while (at < chain.size() && chain[at].weight < group[k].weight) {
        ++at;
      }
      if (at < chain.size() && chain[at].weight == group[k].weight &&
          chain[at].cost == group[k].cost) {
        hull.push_back(k);
      }
    }
    std::sort(hull.begin(), hull.end());

    stats.pruned_dominated += group.size() - dominant.size();
    stats.pruned_off_hull += group.size() - hull.size();
  }
  return pruning;
}

}  // namespace

Status ValidateSolution(const MckpProblem& problem, const MckpSolution& solution) {
  if (solution.choice.size() != problem.groups.size()) {
    return InvalidArgument("mckp: solution size mismatch");
  }
  double weight = 0.0;
  double cost = 0.0;
  for (std::size_t g = 0; g < problem.groups.size(); ++g) {
    const int k = solution.choice[g];
    if (k < 0 || k >= static_cast<int>(problem.groups[g].size())) {
      return InvalidArgument("mckp: bad choice index");
    }
    weight += problem.groups[g][k].weight;
    cost += problem.groups[g][k].cost;
  }
  if (weight > problem.capacity * (1.0 + 1e-9) + 1e-9) {
    return FailedPrecondition("mckp: solution exceeds capacity");
  }
  if (std::abs(cost - solution.total_cost) > 1e-6 * (1.0 + std::abs(cost))) {
    return FailedPrecondition("mckp: reported cost mismatch");
  }
  return OkStatus();
}

StatusOr<MckpSolution> MckpSolver::Solve(const MckpProblem& problem) {
  // Injected faults fire before any solving work, modeling the solve being
  // abandoned at the window boundary (§8.4) rather than mid-DP.
  if (ShouldInjectFault(fault_, FaultSite::kSolverTimeout)) {
    return DeadlineExceeded("mckp: solve exceeded its window budget (injected)");
  }
  if (ShouldInjectFault(fault_, FaultSite::kSolverInfeasible)) {
    return ResourceExhausted("mckp: no feasible placement (injected)");
  }
  TS_RETURN_IF_ERROR(CheckProblem(problem));
  std::size_t pairs = 0;
  for (const auto& group : problem.groups) {
    pairs += group.size();
  }
  Strategy strategy = options_.strategy;
  if (strategy == Strategy::kAuto) {
    // Beyond dp_buckets_max the DP's rounding loss grows with group count
    // while its cost grows with buckets; the greedy is both faster and (with
    // its local-improvement pass) more accurate there.
    strategy = pairs * static_cast<std::size_t>(EffectiveBuckets(problem.groups.size())) <=
                       options_.auto_greedy_threshold * 8
                   ? Strategy::kDp
                   : Strategy::kGreedy;
  }
  stats_ = SolveStats{};
  stats_.used = strategy;
  const MckpPruning pruning = BuildPruning(problem, options_.prune, stats_);
  if (strategy == Strategy::kDp) {
    auto solution = SolveDp(problem, pruning);
    if (solution.ok() || solution.status().code() != StatusCode::kResourceExhausted) {
      return solution;
    }
    // The DP rounds weights up; an exact-fit budget can become infeasible at
    // the chosen resolution. The greedy path uses exact arithmetic.
    stats_.used = Strategy::kGreedy;
    return SolveGreedy(problem, pruning);
  }
  return SolveGreedy(problem, pruning);
}

int MckpSolver::EffectiveBuckets(std::size_t n_groups) const {
  const std::size_t scaled = 16 * n_groups;
  const auto wanted = std::max<std::size_t>(scaled, options_.dp_buckets);
  return static_cast<int>(
      std::min<std::size_t>(wanted, options_.dp_buckets_max));
}

StatusOr<MckpSolution> MckpSolver::SolveDp(const MckpProblem& problem,
                                           const MckpPruning& pruning) {
  const std::size_t n_groups = problem.groups.size();
  const int buckets = EffectiveBuckets(n_groups);
  // Bucket width; capacity 0 degenerates to "all weights must be 0".
  const double width = problem.capacity > 0.0
                           ? problem.capacity / static_cast<double>(buckets)
                           : 1.0;
  auto quantize = [&](double weight) -> int {
    if (weight <= 0.0) {
      return 0;
    }
    if (problem.capacity <= 0.0) {
      return buckets + 1;  // any positive weight is over a zero budget
    }
    const double q = std::ceil(weight / width - 1e-12);
    return q > static_cast<double>(buckets) ? buckets + 1 : static_cast<int>(q);
  };

  // dp[b]: min cost over processed groups with quantized weight <= b.
  std::vector<double> dp(buckets + 1, kInf);
  std::vector<double> next(buckets + 1, kInf);
  // pick[g * (buckets+1) + b]: chosen index for group g at budget b.
  std::vector<std::uint8_t> pick(n_groups * (buckets + 1), 0xff);
  dp.assign(buckets + 1, 0.0);

  for (std::size_t g = 0; g < n_groups; ++g) {
    const auto& group = problem.groups[g];
    const std::vector<int>& keep = pruning.dominant[g];
    TS_CHECK_LE(group.size(), std::size_t{0xff});
    std::fill(next.begin(), next.end(), kInf);
    for (int b = 0; b <= buckets; ++b) {
      double best = kInf;
      int best_k = -1;
      // Dominated choices are cost-neutral to skip: dp[] is non-increasing in
      // b and quantize() is monotone in weight, so a dominator's candidate is
      // always <= the dominated choice's, and keep-first preserves the
      // first-index tie-break below.
      for (const int k : keep) {
        const int wq = quantize(group[k].weight);
        if (wq > b) {
          continue;
        }
        const double cand = dp[b - wq] + group[k].cost;
        if (cand < best) {
          best = cand;
          best_k = k;
        }
      }
      next[b] = best;
      pick[g * (buckets + 1) + b] = best_k < 0 ? 0xff : static_cast<std::uint8_t>(best_k);
    }
    dp.swap(next);
    stats_.dp_cells += static_cast<std::size_t>(buckets + 1) * keep.size();
  }
  if (!std::isfinite(dp[buckets])) {
    return ResourceExhausted("mckp: no feasible assignment at this resolution");
  }

  // Reconstruct choices walking budgets backwards.
  MckpSolution solution;
  solution.choice.assign(n_groups, 0);
  int b = buckets;
  for (std::size_t g = n_groups; g-- > 0;) {
    const std::uint8_t k = pick[g * (buckets + 1) + b];
    TS_CHECK(k != 0xff);
    solution.choice[g] = k;
    b -= quantize(problem.groups[g][k].weight);
  }
  for (std::size_t g = 0; g < n_groups; ++g) {
    const auto& choice = problem.groups[g][solution.choice[g]];
    solution.total_cost += choice.cost;
    solution.total_weight += choice.weight;
  }
  solution.optimal = true;
  return solution;
}

StatusOr<MckpSolution> MckpSolver::SolveGreedy(const MckpProblem& problem,
                                               const MckpPruning& pruning) {
  const std::size_t n_groups = problem.groups.size();
  MckpSolution solution;
  solution.choice.assign(n_groups, 0);

  // Start each group at its minimum-cost choice (never dominance-pruned: a
  // dominator would have to be at least as cheap with a smaller index).
  double total_weight = 0.0;
  double total_cost = 0.0;
  for (std::size_t g = 0; g < n_groups; ++g) {
    const auto& group = problem.groups[g];
    const std::vector<int>& keep = pruning.dominant[g];
    int best = keep.front();
    for (const int k : keep) {
      if (group[k].cost < group[best].cost) {
        best = k;
      }
    }
    solution.choice[g] = best;
    total_weight += group[best].weight;
    total_cost += group[best].cost;
  }

  // Weight-reduction moves, cheapest marginal cost per unit of weight first
  // (the convex-hull walk of the LP relaxation).
  struct Move {
    double efficiency;  // delta cost / delta weight
    std::size_t group;
    int to;
    bool operator>(const Move& other) const { return efficiency > other.efficiency; }
  };
  auto next_move = [&](std::size_t g) -> Move {
    const auto& group = problem.groups[g];
    const auto& cur = group[solution.choice[g]];
    Move best{kInf, g, -1};
    // The walk starts on the hull (min-cost choices are hull points) and
    // stays there, so off-hull choices can never be the efficiency minimum —
    // skipping them reproduces the full scan.
    for (const int k : pruning.hull[g]) {
      const double dw = cur.weight - group[k].weight;
      if (dw <= 1e-12) {
        continue;
      }
      const double dc = group[k].cost - cur.cost;
      const double eff = dc / dw;
      if (eff < best.efficiency) {
        best = Move{eff, g, k};
      }
    }
    return best;
  };

  std::priority_queue<Move, std::vector<Move>, std::greater<Move>> heap;
  for (std::size_t g = 0; g < n_groups; ++g) {
    const Move m = next_move(g);
    if (m.to >= 0) {
      heap.push(m);
    }
  }
  while (total_weight > problem.capacity && !heap.empty()) {
    const Move m = heap.top();
    heap.pop();
    // The stored move may be stale if the group has moved since; recompute.
    const Move fresh = next_move(m.group);
    if (fresh.to < 0) {
      continue;
    }
    if (fresh.to != m.to || std::abs(fresh.efficiency - m.efficiency) > 1e-12) {
      heap.push(fresh);
      continue;
    }
    const auto& group = problem.groups[m.group];
    total_weight -= group[solution.choice[m.group]].weight - group[m.to].weight;
    total_cost += group[m.to].cost - group[solution.choice[m.group]].cost;
    solution.choice[m.group] = m.to;
    ++stats_.greedy_moves;
    const Move again = next_move(m.group);
    if (again.to >= 0) {
      heap.push(again);
    }
  }
  if (total_weight > problem.capacity * (1.0 + 1e-9)) {
    return ResourceExhausted("mckp: greedy could not meet capacity");
  }

  // Local improvement: spend leftover budget on cost reductions, best
  // cost-per-weight first, until a full pass makes no change.
  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    for (std::size_t g = 0; g < n_groups; ++g) {
      const auto& group = problem.groups[g];
      const auto& cur = group[solution.choice[g]];
      int best = -1;
      double best_gain = 0.0;
      // Dominated candidates are safe to skip: the dominator fits whenever
      // they do and gains at least as much (hull restriction would NOT be —
      // a budget cutting mid-segment can make an interior point the best
      // feasible gain).
      for (const int k : pruning.dominant[g]) {
        const double dc = cur.cost - group[k].cost;
        const double dw = group[k].weight - cur.weight;
        if (dc > best_gain && total_weight + dw <= problem.capacity * (1.0 + 1e-12)) {
          best = k;
          best_gain = dc;
        }
      }
      if (best >= 0) {
        total_weight += group[best].weight - cur.weight;
        total_cost -= best_gain;
        solution.choice[g] = best;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }

  solution.total_cost = total_cost;
  solution.total_weight = total_weight;
  solution.optimal = false;
  return solution;
}

}  // namespace tierscape
