#include "src/solver/mckp.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <numeric>
#include <queue>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/fault/fault_injector.h"

namespace tierscape {

// Pruned per-group choice-index sets. Each rule is applied only where it is
// provably cost-neutral:
//
//  * dominant[g] — choices surviving dominance pruning: k is dropped iff some
//    sibling i has weight_i <= weight_k and either cost_i < cost_k, or
//    cost_i == cost_k with i < k ("keep-first"). Every exhaustive
//    first-index-tie-break scan (each DP column min, the greedy seed and
//    improvement passes) picks the same choice over dominant[g] as over the
//    full group: the dropped k is feasible only when i is, never strictly
//    better, and loses every tie to i.
//  * hull[g] — choices on the group's lower convex hull in (weight, cost),
//    colinear points and exact duplicates included. The greedy efficiency
//    walk only ever moves to hull choices: from a hull point, a choice
//    strictly above the hull has strictly worse efficiency than the adjacent
//    hull vertex, so restricting next_move to hull[g] reproduces the
//    unpruned walk move-for-move (up to floating-point-degenerate ties).
//    hull[g] is *not* a subset of dominant[g]: an equal-cost heavier choice
//    on a horizontal hull segment is dominated yet a legal walk target.
//
// Both lists are in ascending index order so first-index tie-breaks survive.
struct MckpPruning {
  std::vector<std::vector<int>> dominant;
  std::vector<std::vector<int>> hull;
};

// Warm-start carry-over (DESIGN.md §4e): everything the delta-repair needs to
// re-solve only the changed groups. `digest` detects change; `pruning` is
// reused verbatim for unchanged groups; `choice` plus the per-group chosen
// contributions let the repair subtract a changed group's old footprint in
// O(1) without keeping the previous window's rows.
struct MckpIncrementalState::Impl {
  bool valid = false;
  bool prune = true;  // pruning mode the cached lists were built with
  std::vector<std::uint64_t> digest;  // per-group row digest
  MckpPruning pruning;
  std::vector<int> choice;  // the incumbent plan
  std::vector<double> chosen_cost;
  std::vector<double> chosen_weight;
  // min_gain_dw[g]: the smallest weight increase any cost-gaining exchange
  // from the incumbent choice could cost (+inf when none exists). Lets the
  // warm improvement pass reject a group on one sequential array read instead
  // of a row scan — at 10⁶ groups the full-scan round costs ~75 ms to commit
  // a handful of moves. Exact filter: every gain candidate is strictly
  // heavier than the incumbent (a no-heavier cheaper sibling would dominate
  // it), so "even the lightest gain does not fit" rules the group out.
  std::vector<double> min_gain_dw;
  double total_cost = 0.0;
  double total_weight = 0.0;
  double capacity = 0.0;
};

MckpIncrementalState::MckpIncrementalState() : impl_(std::make_unique<Impl>()) {}
MckpIncrementalState::~MckpIncrementalState() = default;
bool MckpIncrementalState::valid() const { return impl_->valid; }
void MckpIncrementalState::Reset() { impl_->valid = false; }

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Status CheckProblem(const MckpProblem& problem) {
  if (problem.groups.empty()) {
    return InvalidArgument("mckp: no groups");
  }
  if (!(problem.capacity >= 0.0)) {
    return InvalidArgument("mckp: negative capacity");
  }
  double min_weight_total = 0.0;
  for (const auto& group : problem.groups) {
    if (group.empty()) {
      return InvalidArgument("mckp: empty group");
    }
    double min_weight = kInf;
    for (const auto& choice : group) {
      if (choice.weight < 0.0 || !std::isfinite(choice.cost)) {
        return InvalidArgument("mckp: bad choice");
      }
      min_weight = std::min(min_weight, choice.weight);
    }
    min_weight_total += min_weight;
  }
  if (min_weight_total > problem.capacity * (1.0 + 1e-9) + 1e-12) {
    return ResourceExhausted("mckp: minimum-weight assignment exceeds capacity");
  }
  return OkStatus();
}

// Order-independent work counters a shard worker fills locally; folded into
// SolveStats on the submitting thread in submission order (thread_pool.h).
struct PruneCounts {
  std::size_t choices_total = 0;
  std::size_t dominated = 0;
  std::size_t off_hull = 0;
};

// Reusable PruneGroup workspace: a caller pruning many groups (the cold
// build, a shard, the warm repair loop) allocates one and the per-call
// vectors keep their capacity instead of round-tripping the allocator — at
// 10⁶ groups the mallocs, not the sorts, dominate the build.
struct PrunePoint {
  double weight;
  double cost;
};
struct PruneScratch {
  std::vector<int> order;
  std::vector<PrunePoint> chain;
};

// O(m log m). With `enabled` false both lists are the identity, so the solve
// paths stay branch-free over a single representation. Pure function of the
// group — safe for pool workers writing disjoint per-group slots (the
// scratch must then be worker-local).
void PruneGroup(const std::vector<MckpChoice>& group, bool enabled, std::vector<int>& dominant,
                std::vector<int>& hull, PruneCounts& counts, PruneScratch& scratch) {
  counts.choices_total += group.size();
  dominant.clear();
  hull.clear();
  if (!enabled || group.size() <= 2) {
    dominant.resize(group.size());
    std::iota(dominant.begin(), dominant.end(), 0);
    hull = dominant;
    return;
  }
  std::vector<int>& order = scratch.order;
  order.resize(group.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (group[a].weight != group[b].weight) {
      return group[a].weight < group[b].weight;
    }
    if (group[a].cost != group[b].cost) {
      return group[a].cost < group[b].cost;
    }
    return a < b;
  });

  // Dominance sweep in ascending weight: everything already seen is
  // lighter-or-equal, so k survives iff nothing seen is strictly cheaper or
  // equally cheap with a smaller index.
  double best_cost = kInf;
  int best_index = -1;
  for (const int k : order) {
    const double cost = group[k].cost;
    if (cost < best_cost || (cost == best_cost && k < best_index)) {
      best_cost = cost;
      best_index = k;
    }
    // After the update best_cost <= cost; k survives iff it is itself the
    // (cost, index)-lexicographic minimum of everything seen so far.
    if (cost == best_cost && best_index >= k) {
      dominant.push_back(k);
    }
  }
  std::sort(dominant.begin(), dominant.end());

  // Lower convex hull over the distinct-weight minima (the first entry of
  // each weight run in `order` is that weight's cheapest choice). Pops use
  // a strict test so colinear points stay on the hull — they tie the
  // adjacent vertex's efficiency and the unpruned walk may pick them.
  std::vector<PrunePoint>& chain = scratch.chain;
  chain.clear();
  for (const int k : order) {
    const PrunePoint p{group[k].weight, group[k].cost};
    if (!chain.empty() && chain.back().weight == p.weight) {
      continue;  // heavier-cost duplicate weight: strictly above the hull
    }
    while (chain.size() >= 2) {
      const PrunePoint& a = chain[chain.size() - 2];
      const PrunePoint& b = chain.back();
      // b is strictly above segment a->p iff slope(a,b) > slope(b,p).
      if ((b.cost - a.cost) * (p.weight - b.weight) > (p.cost - b.cost) * (b.weight - a.weight)) {
        chain.pop_back();
      } else {
        break;
      }
    }
    chain.push_back(p);
  }
  std::size_t at = 0;
  for (const int k : order) {
    while (at < chain.size() && chain[at].weight < group[k].weight) {
      ++at;
    }
    if (at < chain.size() && chain[at].weight == group[k].weight &&
        chain[at].cost == group[k].cost) {
      hull.push_back(k);
    }
  }
  std::sort(hull.begin(), hull.end());

  counts.dominated += group.size() - dominant.size();
  counts.off_hull += group.size() - hull.size();
}

void FoldCounts(const PruneCounts& counts, MckpSolver::SolveStats& stats) {
  stats.choices_total += counts.choices_total;
  stats.pruned_dominated += counts.dominated;
  stats.pruned_off_hull += counts.off_hull;
}

MckpPruning BuildPruning(const MckpProblem& problem, bool enabled,
                         MckpSolver::SolveStats& stats) {
  MckpPruning pruning;
  pruning.dominant.resize(problem.groups.size());
  pruning.hull.resize(problem.groups.size());
  PruneCounts counts;
  PruneScratch scratch;
  for (std::size_t g = 0; g < problem.groups.size(); ++g) {
    PruneGroup(problem.groups[g], enabled, pruning.dominant[g], pruning.hull[g], counts, scratch);
  }
  FoldCounts(counts, stats);
  return pruning;
}

// 64-bit digest of a group's choice list (bitwise over the doubles): equal
// rows hash equal, and a changed hotness bucket or pruned choice list flips
// it with collision probability ~2^-64 — the change detector of the warm
// path (DESIGN.md §4e).
std::uint64_t HashGroup(const std::vector<MckpChoice>& group) {
  std::uint64_t h = SplitMix64(group.size());
  for (const MckpChoice& choice : group) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &choice.cost, sizeof(bits));
    h = SplitMix64(h ^ bits);
    std::memcpy(&bits, &choice.weight, sizeof(bits));
    h = SplitMix64(h ^ bits);
  }
  return h;
}

// Starts every group in [lo, hi) at its minimum-cost choice (never
// dominance-pruned: a dominator would have to be at least as cheap with a
// smaller index) and accumulates the range's totals.
void SeedMinCost(const MckpProblem& problem, const MckpPruning& pruning, std::size_t lo,
                 std::size_t hi, std::vector<int>& choice, double& total_weight,
                 double& total_cost) {
  for (std::size_t g = lo; g < hi; ++g) {
    const auto& group = problem.groups[g];
    const std::vector<int>& keep = pruning.dominant[g];
    int best = keep.front();
    for (const int k : keep) {
      if (group[k].cost < group[best].cost) {
        best = k;
      }
    }
    choice[g] = best;
    total_weight += group[best].weight;
    total_cost += group[best].cost;
  }
}

// The smallest weight increase that buys any cost gain from `cur` (+inf when
// no dominant sibling is cheaper). See Impl::min_gain_dw.
double MinGainDw(const std::vector<MckpChoice>& group, const std::vector<int>& dominant,
                 int cur) {
  const MckpChoice& chosen = group[cur];
  double min_dw = kInf;
  for (const int k : dominant) {
    if (group[k].cost < chosen.cost) {
      min_dw = std::min(min_dw, group[k].weight - chosen.weight);
    }
  }
  return min_dw;
}

// A weight-reduction move down the group's hull.
struct Move {
  double efficiency;  // delta cost / delta weight
  std::size_t group;
  int to;
  bool operator>(const Move& other) const { return efficiency > other.efficiency; }
};

// Weight-reduction walk, cheapest marginal cost per unit of weight first
// (the convex-hull walk of the LP relaxation). Groups eligible to move are
// [lo, hi), or exactly `only` when non-null (the warm path's changed set —
// budget slack from unchanged groups is carried over because `total_weight`
// includes their standing contributions). Stops once total_weight fits
// `capacity` or no eligible move remains; `choice` and the running totals
// are updated in place and `moves` counts committed moves. `touched`, when
// non-null, records every group a commit moved (possibly repeated) so the
// warm path can refresh its carry-over for exactly those.
void WalkDown(const MckpProblem& problem, const MckpPruning& pruning, std::size_t lo,
              std::size_t hi, const std::vector<std::size_t>* only, double capacity,
              std::vector<int>& choice, double& total_weight, double& total_cost,
              std::size_t& moves, std::vector<std::size_t>* touched) {
  auto next_move = [&](std::size_t g) -> Move {
    const auto& group = problem.groups[g];
    const auto& cur = group[choice[g]];
    Move best{kInf, g, -1};
    // The walk starts on the hull (min-cost choices are hull points) and
    // stays there, so off-hull choices can never be the efficiency minimum —
    // skipping them reproduces the full scan.
    for (const int k : pruning.hull[g]) {
      const double dw = cur.weight - group[k].weight;
      if (dw <= 1e-12) {
        continue;
      }
      const double dc = group[k].cost - cur.cost;
      const double eff = dc / dw;
      if (eff < best.efficiency) {
        best = Move{eff, g, k};
      }
    }
    return best;
  };

  std::priority_queue<Move, std::vector<Move>, std::greater<Move>> heap;
  auto push_group = [&](std::size_t g) {
    const Move m = next_move(g);
    if (m.to >= 0) {
      heap.push(m);
    }
  };
  if (only != nullptr) {
    for (const std::size_t g : *only) {
      push_group(g);
    }
  } else {
    for (std::size_t g = lo; g < hi; ++g) {
      push_group(g);
    }
  }
  while (total_weight > capacity && !heap.empty()) {
    const Move m = heap.top();
    heap.pop();
    // The stored move may be stale if the group has moved since; recompute.
    const Move fresh = next_move(m.group);
    if (fresh.to < 0) {
      continue;
    }
    if (fresh.to != m.to || std::abs(fresh.efficiency - m.efficiency) > 1e-12) {
      heap.push(fresh);
      continue;
    }
    const auto& group = problem.groups[m.group];
    total_weight -= group[choice[m.group]].weight - group[m.to].weight;
    total_cost += group[m.to].cost - group[choice[m.group]].cost;
    choice[m.group] = m.to;
    ++moves;
    if (touched != nullptr) {
      touched->push_back(m.group);
    }
    const Move again = next_move(m.group);
    if (again.to >= 0) {
      heap.push(again);
    }
  }
}

// Local improvement: spend leftover budget on cost reductions, best gain
// first per group, until a full pass makes no change or `max_rounds` passes
// ran. Returns the number of committed improvement (exchange) moves. The
// warm path bounds this (Options::warm_exchange_rounds) — its incumbent
// already sits near the efficiency frontier, so a short repair reconverges.
std::size_t ImprovementPass(const MckpProblem& problem, const MckpPruning& pruning,
                            std::vector<int>& choice, double& total_weight, double& total_cost,
                            double capacity, int max_rounds, std::vector<double>* min_gain_dw,
                            std::vector<std::size_t>* touched) {
  std::size_t moves = 0;
  // Rounds after the first revisit only the groups that moved last round (a
  // dirty worklist). This is exactly the full re-scan: every committed move
  // strictly *consumes* budget slack (a cheaper no-heavier sibling would
  // dominate the current choice, so any gain candidate is strictly heavier),
  // so a group left untouched at some visit — no feasible gain under the
  // then-larger slack — can never acquire one until its own choice changes.
  //
  // `min_gain_dw` (the warm path's carry, see Impl::min_gain_dw) sharpens the
  // first round the same way: a group whose lightest gain candidate does not
  // fit the current slack is rejected on one array read, no row scan. The
  // caller guarantees it is current for every group; commits keep it so.
  // `touched` records committed groups for the caller's carry refresh.
  std::vector<std::size_t> dirty;
  std::vector<std::size_t> next_dirty;
  for (int round = 0; round < max_rounds; ++round) {
    next_dirty.clear();
    auto visit = [&](std::size_t g) {
      if (min_gain_dw != nullptr &&
          total_weight + (*min_gain_dw)[g] > capacity * (1.0 + 1e-12)) {
        return;
      }
      const auto& group = problem.groups[g];
      const auto& cur = group[choice[g]];
      int best = -1;
      double best_gain = 0.0;
      // Dominated candidates are safe to skip: the dominator fits whenever
      // they do and gains at least as much (hull restriction would NOT be —
      // a budget cutting mid-segment can make an interior point the best
      // feasible gain).
      for (const int k : pruning.dominant[g]) {
        const double dc = cur.cost - group[k].cost;
        const double dw = group[k].weight - cur.weight;
        if (dc > best_gain && total_weight + dw <= capacity * (1.0 + 1e-12)) {
          best = k;
          best_gain = dc;
        }
      }
      if (best >= 0) {
        total_weight += group[best].weight - cur.weight;
        total_cost -= best_gain;
        choice[g] = best;
        if (min_gain_dw != nullptr) {
          (*min_gain_dw)[g] = MinGainDw(group, pruning.dominant[g], best);
        }
        if (touched != nullptr) {
          touched->push_back(g);
        }
        next_dirty.push_back(g);  // ascending: g visits are in ascending order
        ++moves;
      }
    };
    if (round == 0) {
      for (std::size_t g = 0; g < problem.groups.size(); ++g) {
        visit(g);
      }
    } else {
      for (const std::size_t g : dirty) {
        visit(g);
      }
    }
    if (next_dirty.empty()) {
      break;
    }
    dirty.swap(next_dirty);
  }
  return moves;
}

// Recomputes the solution's totals as fresh group-order sums — kills the
// floating-point drift incremental updates would otherwise accumulate across
// warm windows, and makes ValidateSolution's reported-cost check exact.
void FreshTotals(const MckpProblem& problem, MckpSolution& solution) {
  solution.total_cost = 0.0;
  solution.total_weight = 0.0;
  for (std::size_t g = 0; g < problem.groups.size(); ++g) {
    const auto& choice = problem.groups[g][solution.choice[g]];
    solution.total_cost += choice.cost;
    solution.total_weight += choice.weight;
  }
}

}  // namespace

Status ValidateSolution(const MckpProblem& problem, const MckpSolution& solution) {
  if (solution.choice.size() != problem.groups.size()) {
    return InvalidArgument("mckp: solution size mismatch");
  }
  double weight = 0.0;
  double cost = 0.0;
  for (std::size_t g = 0; g < problem.groups.size(); ++g) {
    const int k = solution.choice[g];
    if (k < 0 || k >= static_cast<int>(problem.groups[g].size())) {
      return InvalidArgument("mckp: bad choice index");
    }
    weight += problem.groups[g][k].weight;
    cost += problem.groups[g][k].cost;
  }
  if (weight > problem.capacity * (1.0 + 1e-9) + 1e-9) {
    return FailedPrecondition("mckp: solution exceeds capacity");
  }
  if (std::abs(cost - solution.total_cost) > 1e-6 * (1.0 + std::abs(cost))) {
    return FailedPrecondition("mckp: reported cost mismatch");
  }
  return OkStatus();
}

StatusOr<MckpSolution> MckpSolver::Solve(const MckpProblem& problem) {
  // Per-solve stats: reset before anything can fail, so back-to-back windows
  // — including ones whose solve is rejected or times out — never report the
  // previous solve's dp_cells/greedy_moves (MckpSolverTest.StatsResetPerSolve).
  stats_ = SolveStats{};
  // Injected faults fire before any solving work, modeling the solve being
  // abandoned at the window boundary (§8.4) rather than mid-DP.
  if (ShouldInjectFault(fault_, FaultSite::kSolverTimeout)) {
    return DeadlineExceeded("mckp: solve exceeded its window budget (injected)");
  }
  if (ShouldInjectFault(fault_, FaultSite::kSolverInfeasible)) {
    return ResourceExhausted("mckp: no feasible placement (injected)");
  }
  TS_RETURN_IF_ERROR(CheckProblem(problem));
  stats_.groups_total = problem.groups.size();
  return SolveCold(problem, nullptr);
}

StatusOr<MckpSolution> MckpSolver::Solve(const MckpProblem& problem, MckpIncrementalState* state,
                                         const std::vector<std::uint8_t>* changed_hint) {
  stats_ = SolveStats{};
  if (ShouldInjectFault(fault_, FaultSite::kSolverTimeout)) {
    return DeadlineExceeded("mckp: solve exceeded its window budget (injected)");
  }
  if (ShouldInjectFault(fault_, FaultSite::kSolverInfeasible)) {
    return ResourceExhausted("mckp: no feasible placement (injected)");
  }
  stats_.groups_total = problem.groups.size();
  if (state == nullptr) {
    TS_RETURN_IF_ERROR(CheckProblem(problem));
    return SolveCold(problem, nullptr);
  }
  MckpIncrementalState::Impl& carry = *state->impl_;
  const bool compatible = carry.valid && carry.choice.size() == problem.groups.size() &&
                          carry.prune == options_.prune;
  if (compatible) {
    // The full CheckProblem sweep is deferred to the cold path: unchanged
    // groups carry rows a previous checked solve validated, and SolveWarm
    // re-validates the changed groups' rows itself. Any problem it cannot
    // vouch for (bad rows, infeasible budget) aborts into the fallback
    // below, where CheckProblem reports the canonical error. At 10⁶ groups
    // the sweep costs more than a quarter of the whole warm window (§6.4).
    // Capacity must be vetted here: NaN compares false against every running
    // total, so the warm gates alone would wave it through.
    if (!(problem.capacity >= 0.0)) {
      return InvalidArgument("mckp: negative capacity");
    }
    auto warm = SolveWarm(problem, *state, changed_hint);
    if (warm.ok()) {
      return warm;
    }
    // Delta-repair declined (churn, lying hint, or failed validation): run
    // the full solve. Re-reset the work counters the aborted attempt
    // accumulated so the reported stats describe the solve that produced the
    // returned plan, keeping only the churn measurement.
    const std::size_t groups_changed = stats_.groups_changed;
    stats_ = SolveStats{};
    stats_.groups_total = problem.groups.size();
    stats_.groups_changed = groups_changed;
    stats_.warm_fallback = true;
  }
  TS_RETURN_IF_ERROR(CheckProblem(problem));
  MckpPruning pruning;
  auto solution = SolveCold(problem, &pruning);
  if (solution.ok()) {
    RefreshState(problem, *solution, &pruning, *state);
  } else {
    state->Reset();
  }
  return solution;
}

StatusOr<MckpSolution> MckpSolver::SolveCold(const MckpProblem& problem, MckpPruning* keep) {
  std::size_t pairs = 0;
  for (const auto& group : problem.groups) {
    pairs += group.size();
  }
  Strategy strategy = options_.strategy;
  if (strategy == Strategy::kAuto) {
    // Beyond dp_buckets_max the DP's rounding loss grows with group count
    // while its cost grows with buckets; the greedy is both faster and (with
    // its local-improvement pass) more accurate there.
    strategy = pairs * static_cast<std::size_t>(EffectiveBuckets(problem.groups.size())) <=
                       options_.auto_greedy_threshold * 8
                   ? Strategy::kDp
                   : Strategy::kGreedy;
  }
  stats_.used = strategy;
  if (strategy == Strategy::kGreedy && options_.shards > 1) {
    return SolveGreedySharded(problem, keep);
  }
  MckpPruning pruning = BuildPruning(problem, options_.prune, stats_);
  StatusOr<MckpSolution> solution = OkStatus();
  if (strategy == Strategy::kDp) {
    solution = SolveDp(problem, pruning);
    if (!solution.ok() && solution.status().code() == StatusCode::kResourceExhausted) {
      // The DP rounds weights up; an exact-fit budget can become infeasible
      // at the chosen resolution. The greedy path uses exact arithmetic.
      stats_.used = Strategy::kGreedy;
      solution = SolveGreedy(problem, pruning);
    }
  } else {
    solution = SolveGreedy(problem, pruning);
  }
  if (keep != nullptr) {
    *keep = std::move(pruning);
  }
  return solution;
}

int MckpSolver::EffectiveBuckets(std::size_t n_groups) const {
  const std::size_t scaled = 16 * n_groups;
  const auto wanted = std::max<std::size_t>(scaled, options_.dp_buckets);
  return static_cast<int>(std::min<std::size_t>(wanted, options_.dp_buckets_max));
}

StatusOr<MckpSolution> MckpSolver::SolveDp(const MckpProblem& problem,
                                           const MckpPruning& pruning) {
  const std::size_t n_groups = problem.groups.size();
  const int buckets = EffectiveBuckets(n_groups);
  // Bucket width; capacity 0 degenerates to "all weights must be 0".
  const double width =
      problem.capacity > 0.0 ? problem.capacity / static_cast<double>(buckets) : 1.0;
  auto quantize = [&](double weight) -> int {
    if (weight <= 0.0) {
      return 0;
    }
    if (problem.capacity <= 0.0) {
      return buckets + 1;  // any positive weight is over a zero budget
    }
    const double q = std::ceil(weight / width - 1e-12);
    return q > static_cast<double>(buckets) ? buckets + 1 : static_cast<int>(q);
  };

  // dp[b]: min cost over processed groups with quantized weight <= b.
  std::vector<double> dp(buckets + 1, kInf);
  std::vector<double> next(buckets + 1, kInf);
  // pick[g * (buckets+1) + b]: chosen index for group g at budget b.
  std::vector<std::uint8_t> pick(n_groups * (buckets + 1), 0xff);
  dp.assign(buckets + 1, 0.0);

  for (std::size_t g = 0; g < n_groups; ++g) {
    const auto& group = problem.groups[g];
    const std::vector<int>& keep = pruning.dominant[g];
    TS_CHECK_LE(group.size(), std::size_t{0xff});
    std::fill(next.begin(), next.end(), kInf);
    for (int b = 0; b <= buckets; ++b) {
      double best = kInf;
      int best_k = -1;
      // Dominated choices are cost-neutral to skip: dp[] is non-increasing in
      // b and quantize() is monotone in weight, so a dominator's candidate is
      // always <= the dominated choice's, and keep-first preserves the
      // first-index tie-break below.
      for (const int k : keep) {
        const int wq = quantize(group[k].weight);
        if (wq > b) {
          continue;
        }
        const double cand = dp[b - wq] + group[k].cost;
        if (cand < best) {
          best = cand;
          best_k = k;
        }
      }
      next[b] = best;
      pick[g * (buckets + 1) + b] = best_k < 0 ? 0xff : static_cast<std::uint8_t>(best_k);
    }
    dp.swap(next);
    stats_.dp_cells += static_cast<std::size_t>(buckets + 1) * keep.size();
  }
  if (!std::isfinite(dp[buckets])) {
    return ResourceExhausted("mckp: no feasible assignment at this resolution");
  }

  // Reconstruct choices walking budgets backwards.
  MckpSolution solution;
  solution.choice.assign(n_groups, 0);
  int b = buckets;
  for (std::size_t g = n_groups; g-- > 0;) {
    const std::uint8_t k = pick[g * (buckets + 1) + b];
    TS_CHECK(k != 0xff);
    solution.choice[g] = k;
    b -= quantize(problem.groups[g][k].weight);
  }
  FreshTotals(problem, solution);
  solution.optimal = true;
  return solution;
}

StatusOr<MckpSolution> MckpSolver::SolveGreedy(const MckpProblem& problem,
                                               const MckpPruning& pruning) {
  const std::size_t n_groups = problem.groups.size();
  MckpSolution solution;
  solution.choice.assign(n_groups, 0);
  double total_weight = 0.0;
  double total_cost = 0.0;
  SeedMinCost(problem, pruning, 0, n_groups, solution.choice, total_weight, total_cost);
  WalkDown(problem, pruning, 0, n_groups, nullptr, problem.capacity, solution.choice,
           total_weight, total_cost, stats_.greedy_moves, nullptr);
  if (total_weight > problem.capacity * (1.0 + 1e-9)) {
    return ResourceExhausted("mckp: greedy could not meet capacity");
  }
  ImprovementPass(problem, pruning, solution.choice, total_weight, total_cost, problem.capacity,
                  8, nullptr, nullptr);
  solution.total_cost = total_cost;
  solution.total_weight = total_weight;
  solution.optimal = false;
  return solution;
}

StatusOr<MckpSolution> MckpSolver::SolveGreedySharded(const MckpProblem& problem,
                                                      MckpPruning* keep) {
  const std::size_t n_groups = problem.groups.size();
  const std::size_t n_shards =
      std::min<std::size_t>(std::max(options_.shards, 1), n_groups);
  stats_.shards_used = static_cast<int>(n_shards);

  MckpPruning pruning;
  pruning.dominant.resize(n_groups);
  pruning.hull.resize(n_groups);
  MckpSolution solution;
  solution.choice.assign(n_groups, 0);

  // Per-shard slots: workers compute pure results into their own Shard (and
  // into the disjoint [lo, hi) slices of `pruning` and `solution.choice`);
  // every fold into stats_/totals happens below on the submitting thread in
  // ascending shard order (thread_pool.h invariant), so the result is a
  // function of the shard count, never the pool size.
  struct Shard {
    std::size_t lo = 0;
    std::size_t hi = 0;
    PruneCounts counts;
    double min_weight = 0.0;   // sum of per-group minimum weights
    double seed_weight = 0.0;  // totals at the min-cost seed
    double seed_cost = 0.0;
    double weight = 0.0;  // totals after the shard-local walk
    double cost = 0.0;
    std::size_t moves = 0;
  };
  std::vector<Shard> shards(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i) {
    shards[i].lo = n_groups * i / n_shards;
    shards[i].hi = n_groups * (i + 1) / n_shards;
  }
  auto for_each_shard = [&](const std::function<void(std::size_t)>& fn) {
    if (options_.pool != nullptr && n_shards > 1) {
      options_.pool->ParallelFor(n_shards, fn);
    } else {
      for (std::size_t i = 0; i < n_shards; ++i) {
        fn(i);
      }
    }
  };

  // Phase 1 (parallel, pure): prune and seed each shard, and collect the
  // terms of the budget split.
  for_each_shard([&](std::size_t i) {
    Shard& shard = shards[i];
    PruneScratch scratch;  // worker-local: PruneGroup stays a pure per-slot computation
    for (std::size_t g = shard.lo; g < shard.hi; ++g) {
      const auto& group = problem.groups[g];
      PruneGroup(group, options_.prune, pruning.dominant[g], pruning.hull[g], shard.counts,
                 scratch);
      double min_weight = kInf;
      for (const auto& choice : group) {
        min_weight = std::min(min_weight, choice.weight);
      }
      shard.min_weight += min_weight;
    }
    SeedMinCost(problem, pruning, shard.lo, shard.hi, solution.choice, shard.seed_weight,
                shard.seed_cost);
  });

  // Top-level budget split (sequential, ascending): every shard keeps its
  // mandatory minimum and receives the global slack in proportion to how
  // much weight its seed could shed — a uniform cut of the LP-relaxation
  // frontier when shards are statistically similar; the global repair below
  // absorbs the imbalance when they are not.
  double min_total = 0.0;
  double span_total = 0.0;
  for (const Shard& shard : shards) {
    FoldCounts(shard.counts, stats_);
    min_total += shard.min_weight;
    span_total += shard.seed_weight - shard.min_weight;
  }
  const double slack = problem.capacity - min_total;
  const double frac = span_total > 0.0 ? std::clamp(slack / span_total, 0.0, 1.0) : 1.0;

  // Phase 2 (parallel, pure): walk each shard down to its budget share.
  for_each_shard([&](std::size_t i) {
    Shard& shard = shards[i];
    shard.weight = shard.seed_weight;
    shard.cost = shard.seed_cost;
    const double sub_capacity = shard.min_weight + frac * (shard.seed_weight - shard.min_weight);
    WalkDown(problem, pruning, shard.lo, shard.hi, nullptr, sub_capacity, solution.choice,
             shard.weight, shard.cost, shard.moves, nullptr);
  });

  // Sequential merge in submission order, then top-level repair: a residual
  // overshoot (float edges of the split) continues the walk globally, and
  // the improvement pass re-spends slack across shard boundaries.
  double total_weight = 0.0;
  double total_cost = 0.0;
  for (const Shard& shard : shards) {
    total_weight += shard.weight;
    total_cost += shard.cost;
    stats_.greedy_moves += shard.moves;
  }
  if (total_weight > problem.capacity) {
    WalkDown(problem, pruning, 0, n_groups, nullptr, problem.capacity, solution.choice,
             total_weight, total_cost, stats_.greedy_moves, nullptr);
  }
  if (total_weight > problem.capacity * (1.0 + 1e-9)) {
    return ResourceExhausted("mckp: sharded greedy could not meet capacity");
  }
  ImprovementPass(problem, pruning, solution.choice, total_weight, total_cost, problem.capacity,
                  8, nullptr, nullptr);
  FreshTotals(problem, solution);
  solution.optimal = false;
  if (keep != nullptr) {
    *keep = std::move(pruning);
  }
  return solution;
}

StatusOr<MckpSolution> MckpSolver::SolveWarm(const MckpProblem& problem,
                                             MckpIncrementalState& state,
                                             const std::vector<std::uint8_t>* changed_hint) {
  MckpIncrementalState::Impl& carry = *state.impl_;
  const std::size_t n_groups = problem.groups.size();

  // Changed-group detection: the caller's bitmap when provided (with a
  // deterministic sampled digest cross-check), per-group digests otherwise.
  std::vector<std::size_t> changed_list;
  const bool hinted = changed_hint != nullptr && changed_hint->size() == n_groups;
  if (hinted) {
    const std::size_t stride = options_.warm_check_stride;
    if (stride > 0) {
      for (std::size_t g = stride - 1; g < n_groups; g += stride) {
        if ((*changed_hint)[g] == 0 && HashGroup(problem.groups[g]) != carry.digest[g]) {
          // The hint claims this group is unchanged but its rows moved:
          // discard the hint entirely (it cannot be trusted for any group)
          // and let the caller's full solve refresh the state.
          return InvalidArgument("mckp: changed-group hint contradicts group digest");
        }
      }
    }
    for (std::size_t g = 0; g < n_groups; ++g) {
      if ((*changed_hint)[g] != 0) {
        changed_list.push_back(g);
      }
    }
  } else {
    for (std::size_t g = 0; g < n_groups; ++g) {
      if (HashGroup(problem.groups[g]) != carry.digest[g]) {
        changed_list.push_back(g);
      }
    }
  }
  stats_.groups_changed = changed_list.size();
  if (static_cast<double>(changed_list.size()) >
      options_.warm_churn_fallback * static_cast<double>(n_groups)) {
    return ResourceExhausted("mckp: churn above warm-start threshold");
  }

  // Delta repair on the incumbent: re-prune and re-seed only the changed
  // groups; unchanged groups keep their plan, pruning, and contributions.
  // Every per-group carry slot is refreshed the moment that group's rows or
  // choice move (and only then): the window's total work — including the
  // carry-over bookkeeping — is proportional to churn, never to n_groups.
  double total_weight = carry.total_weight;
  double total_cost = carry.total_cost;
  std::vector<int> choice = carry.choice;
  PruneCounts counts;
  PruneScratch scratch;
  for (const std::size_t g : changed_list) {
    // Changed rows are new to the solver: apply CheckProblem's per-row
    // validation here (unchanged groups already passed it when the carry-over
    // was built; Solve skips the full sweep on the warm path).
    if (problem.groups[g].empty()) {
      return InvalidArgument("mckp: empty group");
    }
    for (const auto& row : problem.groups[g]) {
      if (row.weight < 0.0 || !std::isfinite(row.cost)) {
        return InvalidArgument("mckp: bad choice");
      }
    }
    PruneGroup(problem.groups[g], options_.prune, carry.pruning.dominant[g],
               carry.pruning.hull[g], counts, scratch);
    carry.digest[g] = HashGroup(problem.groups[g]);
    total_weight -= carry.chosen_weight[g];
    total_cost -= carry.chosen_cost[g];
    SeedMinCost(problem, carry.pruning, g, g + 1, choice, total_weight, total_cost);
  }
  FoldCounts(counts, stats_);

  // Hull walk over the changed set first (unchanged groups' budget slack is
  // carried over in the running totals); only if that cannot reach the new
  // capacity — shrunk budget, heavy churn — are unchanged groups mobilized.
  std::vector<std::size_t> walked;
  if (total_weight > problem.capacity) {
    WalkDown(problem, carry.pruning, 0, n_groups, &changed_list, problem.capacity, choice,
             total_weight, total_cost, stats_.greedy_moves, &walked);
  }
  if (total_weight > problem.capacity) {
    WalkDown(problem, carry.pruning, 0, n_groups, nullptr, problem.capacity, choice,
             total_weight, total_cost, stats_.greedy_moves, &walked);
  }
  if (total_weight > problem.capacity * (1.0 + 1e-9)) {
    return ResourceExhausted("mckp: warm repair could not meet capacity");
  }

  // Refresh the carry slots of everything the seed/walk moved before the
  // exchange pass reads min_gain_dw (ImprovementPass requires it current).
  for (const std::size_t g : changed_list) {
    const auto& chosen = problem.groups[g][choice[g]];
    carry.chosen_cost[g] = chosen.cost;
    carry.chosen_weight[g] = chosen.weight;
    carry.min_gain_dw[g] = MinGainDw(problem.groups[g], carry.pruning.dominant[g], choice[g]);
  }
  for (const std::size_t g : walked) {
    const auto& chosen = problem.groups[g][choice[g]];
    carry.chosen_cost[g] = chosen.cost;
    carry.chosen_weight[g] = chosen.weight;
    carry.min_gain_dw[g] = MinGainDw(problem.groups[g], carry.pruning.dominant[g], choice[g]);
  }

  // Bounded exchange repair restores the efficiency frontier across the
  // changed/unchanged boundary and spends any slack the churn freed.
  std::vector<std::size_t> improved;
  stats_.exchange_moves = ImprovementPass(problem, carry.pruning, choice, total_weight,
                                          total_cost, problem.capacity,
                                          options_.warm_exchange_rounds, &carry.min_gain_dw,
                                          &improved);
  for (const std::size_t g : improved) {
    const auto& chosen = problem.groups[g][choice[g]];
    carry.chosen_cost[g] = chosen.cost;
    carry.chosen_weight[g] = chosen.weight;
  }

  // The running totals ARE the solution totals: every update above was a
  // paired subtract/add of exact row values, so their drift off the fresh
  // ascending-order sum is ~machine-epsilon × ops — orders of magnitude
  // inside ValidateSolution's reported-cost tolerance (IncrementalSolveTest
  // cross-checks every warm window with the public ValidateSolution). The
  // capacity gate below is ValidateSolution's, inlined; choice indices come
  // from the pruned lists so the bounds check is structural. An O(n)
  // re-validation sweep here would cost more than the whole repair.
  MckpSolution solution;
  solution.choice = std::move(choice);
  solution.total_cost = total_cost;
  solution.total_weight = total_weight;
  solution.optimal = false;
  if (solution.total_weight > problem.capacity * (1.0 + 1e-9) + 1e-9) {
    // Caller falls back to the full solve, which rebuilds the carry-over.
    return FailedPrecondition("mckp: warm repair exceeds capacity");
  }
  stats_.used = Strategy::kGreedy;
  stats_.warm = true;

  // Digests, pruning, and per-group slots for the moved groups were updated
  // in place above.
  carry.choice = solution.choice;
  carry.total_cost = solution.total_cost;
  carry.total_weight = solution.total_weight;
  carry.capacity = problem.capacity;
  return solution;
}

void MckpSolver::RefreshState(const MckpProblem& problem, const MckpSolution& solution,
                              MckpPruning* pruning, MckpIncrementalState& state) {
  MckpIncrementalState::Impl& carry = *state.impl_;
  const std::size_t n_groups = problem.groups.size();
  carry.pruning = std::move(*pruning);
  carry.digest.resize(n_groups);
  carry.chosen_cost.resize(n_groups);
  carry.chosen_weight.resize(n_groups);
  carry.min_gain_dw.resize(n_groups);
  carry.choice = solution.choice;
  for (std::size_t g = 0; g < n_groups; ++g) {
    carry.digest[g] = HashGroup(problem.groups[g]);
    const auto& chosen = problem.groups[g][solution.choice[g]];
    carry.chosen_cost[g] = chosen.cost;
    carry.chosen_weight[g] = chosen.weight;
    carry.min_gain_dw[g] = MinGainDw(problem.groups[g], carry.pruning.dominant[g], solution.choice[g]);
  }
  carry.total_cost = solution.total_cost;
  carry.total_weight = solution.total_weight;
  carry.capacity = problem.capacity;
  carry.prune = options_.prune;
  carry.valid = true;
}

}  // namespace tierscape
