// Multiple-choice knapsack (MCKP) solver — the "ILP" of §6.4.
//
// TierScape's analytical model (Eq. 2) is, structurally, an MCKP: every 2 MiB
// region (a *group*) must be assigned to exactly one tier (a *choice*), each
// choice carrying a performance-overhead cost (Eq. 7) and a TCO weight
// (Eq. 10); total weight is capped by the knob-scaled TCO budget. The paper
// solves it with Google OR-Tools; this module is the offline-built
// equivalent, with two strategies:
//
//  * kDp     — dynamic program over a discretized weight budget. Rounds each
//              weight *up* to the next bucket, so solutions never violate the
//              budget; with the default resolution the cost error is
//              negligible and the result is reported as optimal.
//  * kGreedy — convex-hull incremental-efficiency greedy (the classic MCKP
//              LP-relaxation walk) plus a local improvement pass; O(n log n),
//              used for very large instances.
//
// Both strategies first prune each group's choice list (Options::prune):
// dominance pruning drops any choice beaten on both cost and weight by an
// earlier-or-cheaper sibling, and the greedy efficiency walk additionally
// restricts its move targets to the group's lower convex hull. Each rule is
// applied only where it provably cannot change the solved total_cost — see
// the notes in mckp.cc; MckpSolverTest.PruningPreservesTotalCost guards the
// equivalence on randomized instances.
//
// The paper reports its ILP consumes <0.3% of a CPU and ~480 MB (§8.4);
// bench/micro_solver reproduces the equivalent measurement for this solver.
#ifndef SRC_SOLVER_MCKP_H_
#define SRC_SOLVER_MCKP_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace tierscape {

class FaultInjector;

struct MckpChoice {
  double cost = 0.0;    // objective contribution (minimized)
  double weight = 0.0;  // budgeted resource contribution
};

struct MckpProblem {
  // groups[g][k] is the k-th choice of group g; each group picks exactly one.
  std::vector<std::vector<MckpChoice>> groups;
  double capacity = 0.0;  // maximum total weight
};

// Per-group pruned choice-index sets; built in mckp.cc (opaque here).
struct MckpPruning;

struct MckpSolution {
  std::vector<int> choice;  // chosen index per group
  double total_cost = 0.0;
  double total_weight = 0.0;
  bool optimal = false;  // true when produced by the DP at full resolution
};

class MckpSolver {
 public:
  enum class Strategy { kAuto, kDp, kGreedy };

  struct Options {
    Strategy strategy = Strategy::kAuto;
    // Minimum weight-budget discretization for the DP. Each group's weight
    // rounds up by at most one bucket, so the effective resolution scales
    // with the group count (16 buckets per group, capped at dp_buckets_max)
    // to keep the cumulative rounding loss below ~3% of the budget.
    int dp_buckets = 2048;
    int dp_buckets_max = 16384;
    // kAuto switches to greedy above this many group-choice pairs. The
    // decision uses the *unpruned* pair count so pruning never flips the
    // chosen strategy (the two strategies return different costs).
    std::size_t auto_greedy_threshold = 4'000'000;
    // Per-group dominance/convex-hull pruning. Cost-neutral by construction;
    // off only for A/B measurement (bench/micro_solver) and the equivalence
    // test.
    bool prune = true;
  };

  struct SolveStats {
    std::size_t dp_cells = 0;
    std::size_t greedy_moves = 0;
    // Pruning effectiveness: total choices across groups, how many were
    // dominance-pruned (skipped by the DP and the greedy improvement pass),
    // and how many the greedy efficiency walk excludes as off-hull (the two
    // counts overlap: a dominated choice is usually also off the hull).
    std::size_t choices_total = 0;
    std::size_t pruned_dominated = 0;
    std::size_t pruned_off_hull = 0;
    Strategy used = Strategy::kDp;
  };

  MckpSolver() : options_(Options()) {}
  explicit MckpSolver(Options options) : options_(options) {}

  // Fault injection (DESIGN.md §4d): checked once at Solve entry; injects
  // kDeadlineExceeded (solve blew its window budget, §8.4) or
  // kResourceExhausted (spurious infeasibility).
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }

  // Fails with kInvalidArgument for malformed problems, kResourceExhausted
  // when even the minimum-weight assignment exceeds the capacity, and
  // kDeadlineExceeded on an injected solver timeout.
  StatusOr<MckpSolution> Solve(const MckpProblem& problem);

  const SolveStats& stats() const { return stats_; }

 private:
  StatusOr<MckpSolution> SolveDp(const MckpProblem& problem, const MckpPruning& pruning);
  int EffectiveBuckets(std::size_t n_groups) const;
  StatusOr<MckpSolution> SolveGreedy(const MckpProblem& problem, const MckpPruning& pruning);

  Options options_;
  SolveStats stats_;
  FaultInjector* fault_ = nullptr;
};

// Checks that a solution is well-formed and within capacity.
Status ValidateSolution(const MckpProblem& problem, const MckpSolution& solution);

}  // namespace tierscape

#endif  // SRC_SOLVER_MCKP_H_
