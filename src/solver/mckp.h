// Multiple-choice knapsack (MCKP) solver — the "ILP" of §6.4.
//
// TierScape's analytical model (Eq. 2) is, structurally, an MCKP: every 2 MiB
// region (a *group*) must be assigned to exactly one tier (a *choice*), each
// choice carrying a performance-overhead cost (Eq. 7) and a TCO weight
// (Eq. 10); total weight is capped by the knob-scaled TCO budget. The paper
// solves it with Google OR-Tools; this module is the offline-built
// equivalent, with two strategies:
//
//  * kDp     — dynamic program over a discretized weight budget. Rounds each
//              weight *up* to the next bucket, so solutions never violate the
//              budget; with the default resolution the cost error is
//              negligible and the result is reported as optimal.
//  * kGreedy — convex-hull incremental-efficiency greedy (the classic MCKP
//              LP-relaxation walk) plus a local improvement pass; O(n log n),
//              used for very large instances.
//
// Both strategies first prune each group's choice list (Options::prune):
// dominance pruning drops any choice beaten on both cost and weight by an
// earlier-or-cheaper sibling, and the greedy efficiency walk additionally
// restricts its move targets to the group's lower convex hull. Each rule is
// applied only where it provably cannot change the solved total_cost — see
// the notes in mckp.cc; MckpSolverTest.PruningPreservesTotalCost guards the
// equivalence on randomized instances.
//
// Production-scale paths (DESIGN.md §4e):
//
//  * Warm-start incremental solving — `Solve(problem, &state)` keeps the
//    previous window's plan, pruning, and per-group digests in an
//    MckpIncrementalState, re-solves only the groups whose choice lists
//    changed since the last window (delta-repair on the greedy hull walk),
//    and falls back to a full solve when churn exceeds
//    Options::warm_churn_fallback or the repaired plan fails
//    ValidateSolution. Between consecutive windows most regions keep their
//    hotness bucket, so the per-window cost tracks churn, not instance size.
//  * Sharded hierarchical solving — Options::{shards, pool} partitions the
//    groups into contiguous shards solved concurrently on the ThreadPool
//    (workers compute pure per-shard results into disjoint slots), with a
//    proportional top-level budget split repaired sequentially in
//    submission order; results are byte-identical for every pool size.
//
// The paper reports its ILP consumes <0.3% of a CPU and ~480 MB (§8.4);
// bench/micro_solver reproduces the equivalent measurement for this solver
// and extends it into a 10³→10⁶-region cold/warm/sharded scaling curve.
#ifndef SRC_SOLVER_MCKP_H_
#define SRC_SOLVER_MCKP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"

namespace tierscape {

class FaultInjector;
class ThreadPool;

struct MckpChoice {
  double cost = 0.0;    // objective contribution (minimized)
  double weight = 0.0;  // budgeted resource contribution
};

struct MckpProblem {
  // groups[g][k] is the k-th choice of group g; each group picks exactly one.
  std::vector<std::vector<MckpChoice>> groups;
  double capacity = 0.0;  // maximum total weight
};

// Per-group pruned choice-index sets; built in mckp.cc (opaque here).
struct MckpPruning;

struct MckpSolution {
  std::vector<int> choice;  // chosen index per group
  double total_cost = 0.0;
  double total_weight = 0.0;
  bool optimal = false;  // true when produced by the DP at full resolution
};

// Carry-over state for warm-start solves (DESIGN.md §4e): the previous
// window's plan (the incumbent), its per-group pruned choice lists, chosen
// cost/weight contributions, and a 64-bit digest per group for change
// detection. Owned by the caller (one per solver client, e.g. per
// AnalyticalPolicy); a solver fills it on every Solve(problem, &state) call —
// cold or warm — so the next window can delta-repair from it.
class MckpIncrementalState {
 public:
  MckpIncrementalState();
  ~MckpIncrementalState();

  MckpIncrementalState(const MckpIncrementalState&) = delete;
  MckpIncrementalState& operator=(const MckpIncrementalState&) = delete;

  // True once a solve has populated the state (warm starts are possible).
  bool valid() const;
  // Drops the incumbent; the next Solve(problem, &state) runs cold.
  void Reset();

 private:
  friend class MckpSolver;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

class MckpSolver {
 public:
  enum class Strategy { kAuto, kDp, kGreedy };

  struct Options {
    Strategy strategy = Strategy::kAuto;
    // Minimum weight-budget discretization for the DP. Each group's weight
    // rounds up by at most one bucket, so the effective resolution scales
    // with the group count (16 buckets per group, capped at dp_buckets_max)
    // to keep the cumulative rounding loss below ~3% of the budget.
    int dp_buckets = 2048;
    int dp_buckets_max = 16384;
    // kAuto switches to greedy above this many group-choice pairs. The
    // decision uses the *unpruned* pair count so pruning never flips the
    // chosen strategy (the two strategies return different costs).
    std::size_t auto_greedy_threshold = 4'000'000;
    // Per-group dominance/convex-hull pruning. Cost-neutral by construction;
    // off only for A/B measurement (bench/micro_solver) and the equivalence
    // test.
    bool prune = true;

    // --- Warm-start incremental solving (DESIGN.md §4e) ---
    // Full re-solve when more than this fraction of groups changed since the
    // incumbent: above it the delta-repair bookkeeping costs more than a
    // cold greedy solve and its quality bound degrades.
    double warm_churn_fallback = 0.5;
    // Bounded frontier-repair budget: after the delta walk, at most this
    // many local-improvement rounds restore the efficiency frontier (the
    // cold greedy path uses 8; warm windows start near the frontier so fewer
    // rounds reach the same fixpoint).
    int warm_exchange_rounds = 2;
    // When the caller supplies a changed-group hint, every stride-th
    // unflagged group is digest-checked anyway; a mismatch invalidates the
    // hint and forces the cold path. 0 disables the cross-check.
    std::size_t warm_check_stride = 64;

    // --- Sharded hierarchical solving (DESIGN.md §4e) ---
    // Greedy-path sharding: groups are split into `shards` contiguous ranges
    // solved independently (on `pool` when set, serially otherwise) under a
    // proportional budget split, then merged and frontier-repaired
    // sequentially. Shard count — not pool size — determines the result, so
    // output is byte-identical across thread counts. The DP path ignores
    // sharding (it is only selected at small scale).
    int shards = 1;
    ThreadPool* pool = nullptr;  // borrowed; may be null even when shards > 1
  };

  struct SolveStats {
    std::size_t dp_cells = 0;
    std::size_t greedy_moves = 0;
    // Pruning effectiveness: total choices across groups, how many were
    // dominance-pruned (skipped by the DP and the greedy improvement pass),
    // and how many the greedy efficiency walk excludes as off-hull (the two
    // counts overlap: a dominated choice is usually also off the hull).
    std::size_t choices_total = 0;
    std::size_t pruned_dominated = 0;
    std::size_t pruned_off_hull = 0;
    Strategy used = Strategy::kDp;
    // Warm-start path (DESIGN.md §4e).
    std::size_t groups_total = 0;
    std::size_t groups_changed = 0;   // re-solved groups (= churn this window)
    std::size_t exchange_moves = 0;   // frontier-repair improvement moves
    bool warm = false;                // delta-repair produced the solution
    bool warm_fallback = false;       // state present but a full solve ran
    int shards_used = 1;
  };

  MckpSolver() : options_(Options()) {}
  explicit MckpSolver(Options options) : options_(options) {}

  // Fault injection (DESIGN.md §4d): checked once at Solve entry; injects
  // kDeadlineExceeded (solve blew its window budget, §8.4) or
  // kResourceExhausted (spurious infeasibility).
  void set_fault_injector(FaultInjector* fault) { fault_ = fault; }

  // Re-points the sharded path (daemon wiring happens after policy
  // construction). Pool is borrowed and must outlive the solver's solves.
  void set_shards(int shards, ThreadPool* pool) {
    options_.shards = shards;
    options_.pool = pool;
  }

  // Fails with kInvalidArgument for malformed problems, kResourceExhausted
  // when even the minimum-weight assignment exceeds the capacity, and
  // kDeadlineExceeded on an injected solver timeout.
  StatusOr<MckpSolution> Solve(const MckpProblem& problem);

  // Warm-start solve. With a valid `state` holding the previous window's
  // incumbent, re-solves only the changed groups (delta-repair); otherwise
  // (first window, shape change, churn above Options::warm_churn_fallback,
  // or a repair that fails validation) runs the full solve. Either way the
  // state is refreshed for the next window.
  //
  // `changed_hint` (optional, same length as problem.groups) marks the
  // groups whose choices may differ from the previous window — e.g. the
  // telemetry changed-bucket bitmap (HotnessTable::ChangedBitmap). Contract:
  // an unflagged group's choices must be bitwise-identical to the previous
  // window's; the solver digest-checks a deterministic sample
  // (Options::warm_check_stride) and discards a hint caught lying. Without a
  // hint the changed set is computed from per-group digests.
  StatusOr<MckpSolution> Solve(const MckpProblem& problem, MckpIncrementalState* state,
                               const std::vector<std::uint8_t>* changed_hint = nullptr);

  const SolveStats& stats() const { return stats_; }
  const Options& options() const { return options_; }

 private:
  // `keep`, when non-null, receives the pruning built during the solve so a
  // warm-start state can cache it without rebuilding.
  StatusOr<MckpSolution> SolveCold(const MckpProblem& problem, MckpPruning* keep);
  StatusOr<MckpSolution> SolveDp(const MckpProblem& problem, const MckpPruning& pruning);
  int EffectiveBuckets(std::size_t n_groups) const;
  StatusOr<MckpSolution> SolveGreedy(const MckpProblem& problem, const MckpPruning& pruning);
  StatusOr<MckpSolution> SolveGreedySharded(const MckpProblem& problem, MckpPruning* keep);
  StatusOr<MckpSolution> SolveWarm(const MckpProblem& problem, MckpIncrementalState& state,
                                   const std::vector<std::uint8_t>* changed_hint);
  // Refreshes `state` from a completed solve (consuming `pruning`) so the
  // next window can warm-start.
  void RefreshState(const MckpProblem& problem, const MckpSolution& solution,
                    MckpPruning* pruning, MckpIncrementalState& state);

  Options options_;
  SolveStats stats_;
  FaultInjector* fault_ = nullptr;
};

// Checks that a solution is well-formed and within capacity.
Status ValidateSolution(const MckpProblem& problem, const MckpSolution& solution);

}  // namespace tierscape

#endif  // SRC_SOLVER_MCKP_H_
